package nativecache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/codegen"
)

// Artifact file layout in the cache dir, per key:
//
//	<key>.so        plugin artifact
//	<key>.bin       subprocess runner artifact
//	<key>.so.sum    hex SHA-256 of the artifact bytes (integrity sidecar)
//	<key>.bin.sum
//	<key>.json      human-readable manifest (debugging aid, never read back)
//
// Install order writes the artifact first and its sidecar second, both via
// atomic renames: a crash between the two leaves an artifact without a
// sidecar, which verification treats as corrupt and rebuilds.

func (c *Cache) artifactPath(key string, mode Mode) string {
	ext := ".so"
	if mode == ModeSubprocess {
		ext = ".bin"
	}
	return filepath.Join(c.cfg.Dir, key+ext)
}

// loadDisk verifies and loads an installed artifact. A missing artifact
// reports fs.ErrNotExist; an artifact failing integrity verification is
// deleted (counted as "corrupt") and reported as an error so the caller
// rebuilds.
func (c *Cache) loadDisk(key string, set SpecSet, mode Mode) (*Artifact, error) {
	path := c.artifactPath(key, mode)
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	if err := verifySum(path); err != nil {
		c.cfg.Obs.event("corrupt")
		os.Remove(path)
		os.Remove(path + ".sum")
		return nil, err
	}
	return c.loadVerified(path, key, set, mode)
}

// loadVerified turns an integrity-checked artifact file into a live
// Artifact. Plugin load failures are NOT treated as corruption: a
// sum-verified .so that fails plugin.Open was built by this very
// configuration (the key commits to the toolchain), so the failure is a
// property of the host process — typically a race-instrumented or
// cgo-disabled binary — and deleting the file would only make every other
// process rebuild it.
func (c *Cache) loadVerified(path, key string, set SpecSet, mode Mode) (*Artifact, error) {
	if mode == ModePlugin {
		funcs, err := openPlugin(path, set)
		if err != nil {
			return nil, err
		}
		return &Artifact{Key: key, mode: ModePlugin, specs: set.Names(), funcs: funcs}, nil
	}
	if err := checkExecutable(path); err != nil {
		return nil, err
	}
	return &Artifact{Key: key, mode: ModeSubprocess, specs: set.Names(), bin: path}, nil
}

func verifySum(path string) error {
	want, err := os.ReadFile(path + ".sum")
	if err != nil {
		return fmt.Errorf("nativecache: artifact %s has no integrity sidecar: %w", filepath.Base(path), err)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	got := hex.EncodeToString(h.Sum(nil))
	if got != strings.TrimSpace(string(want)) {
		return fmt.Errorf("nativecache: artifact %s fails integrity verification", filepath.Base(path))
	}
	return nil
}

func checkExecutable(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if info.Mode()&0o111 == 0 {
		return fmt.Errorf("nativecache: runner %s is not executable", filepath.Base(path))
	}
	return nil
}

// build emits the generated sources into a staging module under the cache
// dir, runs the Go toolchain, and installs the artifact atomically.
func (c *Cache) build(ctx context.Context, key string, gen map[string]string, set SpecSet, mode Mode) (*Artifact, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.BuildTimeout)
	defer cancel()

	stage, err := os.MkdirTemp(c.cfg.Dir, "stage-")
	if err != nil {
		return nil, fmt.Errorf("nativecache: staging dir: %w", err)
	}
	defer os.RemoveAll(stage)

	files := make(map[string]string, len(gen)+2)
	for name, src := range gen {
		files[name] = src
	}
	files["main.go"] = runnerSource(set)
	files["go.mod"] = c.stagingGoMod(key)
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(stage, name), []byte(src), 0o644); err != nil {
			return nil, fmt.Errorf("nativecache: staging %s: %w", name, err)
		}
	}

	// No -trimpath: plugin version checks fingerprint every linked package,
	// and the host process is built without it — a trimmed plugin would be
	// rejected by plugin.Open as "built with a different version".
	out := filepath.Join(stage, "out")
	args := []string{"build"}
	if mode == ModePlugin {
		args = append(args, "-buildmode=plugin")
	}
	args = append(args, "-o", out, ".")
	cmd := exec.CommandContext(ctx, c.cfg.GoBin, args...)
	cmd.Dir = stage
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=-mod=mod")
	if msg, err := cmd.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("nativecache: go build (%s) failed: %w\n%s", mode, err, msg)
	}

	path := c.artifactPath(key, mode)
	if err := installAtomic(out, path); err != nil {
		return nil, err
	}
	c.writeManifest(key, set)
	return c.loadVerified(path, key, set, mode)
}

// stagingGoMod names the staging module after the key so every artifact has
// a unique plugin path — the plugin runtime refuses to load two plugins
// with the same package path into one process.
func (c *Cache) stagingGoMod(key string) string {
	goLine := "go 1.24"
	if data, err := os.ReadFile(filepath.Join(c.cfg.ModuleRoot, "go.mod")); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "go ") {
				goLine = strings.TrimSpace(line)
				break
			}
		}
	}
	return fmt.Sprintf("module nativegen_%s\n\n%s\n\nrequire repro v0.0.0\n\nreplace repro => %s\n",
		shortKey(key), goLine, c.cfg.ModuleRoot)
}

// installAtomic moves a built artifact into place: the artifact bytes via
// rename (same filesystem — staging lives under the cache dir), then its
// integrity sidecar.
func installAtomic(src, dst string) error {
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	h := sha256.New()
	_, cerr := io.Copy(h, f)
	f.Close()
	if cerr != nil {
		return cerr
	}
	sum := hex.EncodeToString(h.Sum(nil))
	if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("nativecache: installing artifact: %w", err)
	}
	tmp := dst + ".sum.tmp"
	if err := os.WriteFile(tmp, []byte(sum+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, dst+".sum")
}

// manifest is the on-disk debugging record next to each artifact.
type manifest struct {
	Specs          []string  `json:"specs"`
	CodegenVersion string    `json:"codegen_version"`
	GoVersion      string    `json:"go_version"`
	Built          time.Time `json:"built"`
}

func (c *Cache) writeManifest(key string, set SpecSet) {
	raw, err := json.MarshalIndent(manifest{
		Specs:          set.Names(),
		CodegenVersion: codegen.Version,
		GoVersion:      runtime.Version(),
		Built:          time.Now().UTC(),
	}, "", "  ")
	if err == nil {
		// Best-effort: the manifest is never read back.
		_ = os.WriteFile(filepath.Join(c.cfg.Dir, key+".json"), append(raw, '\n'), 0o644)
	}
}

// notExist reports a loadDisk miss (as opposed to a corrupt or unloadable
// artifact).
func notExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
