// Package nativecache turns GOSpeL specifications into *compiled* optimizers
// ahead of time — the reproduction's analog of GENesis emitting C and running
// it through cc, instead of interpreting the spec in-process. A spec set is
// generated to Go with codegen.Generate, built with the real Go toolchain
// into a plugin.Open-loadable shared object (or, where the plugin runtime is
// unavailable, a standalone runner binary driven over a pipe), and the
// resulting optlib.ApplyFuncs are handed to the serving path.
//
// Artifacts live in a content-addressed cache directory and persist across
// restarts: the name of every artifact is the SHA-256 of everything that
// shapes its behavior — the spec sources, the generated Go, the code
// generator's version, the Go toolchain version/target, and a tree hash of
// the library packages the generated code links against. A cache hit is
// therefore always safe to load, and any change to a spec or to the
// supporting libraries moves the key instead of invalidating in place.
// In-process loads are deduplicated behind a singleflight so a thundering
// herd of first requests triggers exactly one toolchain invocation.
//
// Every entry point degrades cleanly: callers that can tolerate the
// interpreter (the server, cmd/opt under -engine=auto) treat any error from
// Ensure as "serve interpreted" and let a later request retry.
package nativecache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/codegen"
	"repro/internal/gospel"
)

// Mode selects how an artifact is executed.
type Mode int

const (
	// ModeAuto prefers an in-process plugin and falls back to the
	// subprocess runner when the plugin cannot be built or loaded (cgo
	// disabled, race-instrumented host, unsupported platform).
	ModeAuto Mode = iota
	// ModePlugin requires an in-process plugin.
	ModePlugin
	// ModeSubprocess requires the standalone runner binary.
	ModeSubprocess
)

func (m Mode) String() string {
	switch m {
	case ModePlugin:
		return "plugin"
	case ModeSubprocess:
		return "subprocess"
	}
	return "auto"
}

// Obs carries the cache's telemetry hooks; any field may be nil.
type Obs struct {
	// Compile observes one toolchain build (source emission through
	// artifact install) and whether it succeeded.
	Compile func(d time.Duration, ok bool)
	// Event counts artifact-cache outcomes: "hit" (a usable artifact was
	// already in memory or on disk), "miss" (a build was required) or
	// "corrupt" (an on-disk artifact failed integrity verification and was
	// discarded).
	Event func(kind string)
	// Loaded reports a spec becoming servable from a compiled artifact, and
	// through which mode.
	Loaded func(spec, mode string)
}

func (o Obs) event(kind string) {
	if o.Event != nil {
		o.Event(kind)
	}
}

// Config configures a Cache.
type Config struct {
	// Dir is the artifact directory; it is created if absent. Required.
	Dir string
	// ModuleRoot is the repro module checkout the generated code links
	// against; empty means discover it from the working directory (then the
	// executable's directory) upward.
	ModuleRoot string
	// GoBin is the go tool; empty means $PATH lookup.
	GoBin string
	// DisablePlugin forces the subprocess mode even under ModeAuto — the
	// escape hatch for hosts whose plugin runtime is unusable, and the seam
	// the fallback tests use.
	DisablePlugin bool
	// BuildTimeout bounds one toolchain invocation; 0 selects 10 minutes.
	BuildTimeout time.Duration
	// Logger receives build and fallback logs; nil selects slog.Default().
	Logger *slog.Logger
	// Obs receives telemetry; all fields optional.
	Obs Obs
}

// Cache is the compiled-artifact cache. Create with New; all methods are
// safe for concurrent use.
type Cache struct {
	cfg     Config
	version string // toolchain+target component of every key
	tree    string // tree hash of the linked library packages

	mu     sync.Mutex
	keys   map[string]keyEntry // spec-set fingerprint → cache key
	loaded map[string]*Artifact
	calls  map[string]*call

	wg     sync.WaitGroup
	closed bool
}

type keyEntry struct {
	key string
	gen map[string]string // generated file name → source
	err error
}

// call is one in-flight Ensure, deduplicating concurrent first loads.
type call struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// SpecSet is an immutable, order-independent set of named GOSpeL sources.
type SpecSet struct {
	names   []string
	sources map[string]string
}

// NewSpecSet builds a set from name → GOSpeL source.
func NewSpecSet(sources map[string]string) SpecSet {
	cp := make(map[string]string, len(sources))
	names := make([]string, 0, len(sources))
	for n, src := range sources {
		cp[n] = src
		names = append(names, n)
	}
	sort.Strings(names)
	return SpecSet{names: names, sources: cp}
}

// Names returns the member names, sorted.
func (s SpecSet) Names() []string { return append([]string(nil), s.names...) }

// Len returns the member count.
func (s SpecSet) Len() int { return len(s.names) }

// fingerprint is a cheap content address of the raw sources, used to
// memoize the (expensive) full key computation per process.
func (s SpecSet) fingerprint() string {
	h := sha256.New()
	for _, n := range s.names {
		fmt.Fprintf(h, "%d:%s%d:%s", len(n), n, len(s.sources[n]), s.sources[n])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DefaultDir returns the conventional artifact directory,
// <user cache dir>/repro-native — shared by optd and cmd/opt so a CLI build
// warms the daemon's cache and vice versa.
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("nativecache: no user cache dir (set -native-dir): %w", err)
	}
	return filepath.Join(base, "repro-native"), nil
}

// New builds a Cache: the directory is created, the module root resolved and
// the library tree hash (a component of every artifact key) computed once.
func New(cfg Config) (*Cache, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("nativecache: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("nativecache: cache dir: %w", err)
	}
	if cfg.ModuleRoot == "" {
		root, err := FindModuleRoot()
		if err != nil {
			return nil, err
		}
		cfg.ModuleRoot = root
	}
	if abs, err := filepath.Abs(cfg.ModuleRoot); err == nil {
		cfg.ModuleRoot = abs
	}
	if _, err := os.Stat(filepath.Join(cfg.ModuleRoot, "go.mod")); err != nil {
		return nil, fmt.Errorf("nativecache: module root %s has no go.mod: %w", cfg.ModuleRoot, err)
	}
	if cfg.GoBin == "" {
		cfg.GoBin = "go"
	}
	if cfg.BuildTimeout <= 0 {
		cfg.BuildTimeout = 10 * time.Minute
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	tree, err := treeHash(cfg.ModuleRoot)
	if err != nil {
		return nil, fmt.Errorf("nativecache: hashing library tree: %w", err)
	}
	return &Cache{
		cfg:     cfg,
		version: runtime.Version() + "/" + runtime.GOOS + "/" + runtime.GOARCH,
		tree:    tree,
		keys:    map[string]keyEntry{},
		loaded:  map[string]*Artifact{},
		calls:   map[string]*call{},
	}, nil
}

// Dir returns the artifact directory.
func (c *Cache) Dir() string { return c.cfg.Dir }

// Close waits for background builds started with EnsureAsync.
func (c *Cache) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.wg.Wait()
}

// Key returns the content address an artifact for this set would have. It
// runs the code generator (memoized per set), so it can fail on a spec the
// generator rejects.
func (c *Cache) Key(set SpecSet) (string, error) {
	key, _, err := c.keyFor(set)
	return key, err
}

// keyFor computes (and memoizes) the artifact key and the generated sources
// for a spec set. The key commits to everything that shapes the compiled
// artifact: raw spec sources, generated Go, codegen.Version, the Go
// toolchain version and target, and the tree hash of the library packages
// the artifact links against.
func (c *Cache) keyFor(set SpecSet) (string, map[string]string, error) {
	fp := set.fingerprint()
	c.mu.Lock()
	if e, ok := c.keys[fp]; ok {
		c.mu.Unlock()
		return e.key, e.gen, e.err
	}
	c.mu.Unlock()

	gen := make(map[string]string, len(set.names))
	h := sha256.New()
	fmt.Fprintf(h, "nativecache/v1\x00codegen=%s\x00go=%s\x00tree=%s\x00", codegen.Version, c.version, c.tree)
	var err error
	for _, name := range set.names {
		spec, perr := gospel.ParseAndCheck(name, set.sources[name])
		if perr != nil {
			err = fmt.Errorf("nativecache: spec %s: %w", name, perr)
			break
		}
		src, gerr := codegen.Generate(spec, codegen.Options{Package: "main"})
		if gerr != nil {
			err = fmt.Errorf("nativecache: spec %s: %w", name, gerr)
			break
		}
		gen[genFileName(name)] = src
		fmt.Fprintf(h, "spec=%s\x00%s\x00gen\x00%s\x00", name, set.sources[name], src)
	}
	e := keyEntry{err: err}
	if err == nil {
		e.key = hex.EncodeToString(h.Sum(nil))
		e.gen = gen
	}
	c.mu.Lock()
	c.keys[fp] = e
	c.mu.Unlock()
	return e.key, e.gen, e.err
}

// Lookup returns an already-loaded artifact for the set, preferring the
// in-process plugin over the subprocess runner. It never touches the disk
// or the toolchain, so it is cheap enough for the per-request path.
func (c *Cache) Lookup(set SpecSet) (*Artifact, bool) {
	key, _, err := c.keyFor(set)
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.loaded[key+":plugin"]; a != nil {
		return a, true
	}
	if a := c.loaded[key+":subprocess"]; a != nil {
		return a, true
	}
	return nil, false
}

// Ensure returns a loaded artifact for the set, building it with the Go
// toolchain if the cache has no usable copy. Concurrent calls for the same
// artifact share one build. The returned artifact is immutable and safe for
// concurrent use.
func (c *Cache) Ensure(ctx context.Context, set SpecSet, mode Mode) (*Artifact, error) {
	if set.Len() == 0 {
		return nil, fmt.Errorf("nativecache: empty spec set")
	}
	key, gen, err := c.keyFor(set)
	if err != nil {
		return nil, err
	}
	switch mode {
	case ModePlugin:
		return c.ensureOne(ctx, key, gen, set, ModePlugin)
	case ModeSubprocess:
		return c.ensureOne(ctx, key, gen, set, ModeSubprocess)
	default:
		// Race-instrumented binaries cannot load the (uninstrumented)
		// plugins; skip straight to the runner instead of proving it with a
		// wasted build.
		if !c.cfg.DisablePlugin && !raceEnabled {
			if a, perr := c.ensureOne(ctx, key, gen, set, ModePlugin); perr == nil {
				return a, nil
			} else if ctx.Err() != nil {
				return nil, perr
			} else {
				c.cfg.Logger.Warn("nativecache: plugin unavailable, using subprocess runner",
					slog.String("key", shortKey(key)), slog.Any("err", perr))
			}
		}
		return c.ensureOne(ctx, key, gen, set, ModeSubprocess)
	}
}

// EnsureAsync schedules Ensure in the background (deduplicated with any
// concurrent Ensure of the same artifact) and reports the result to onDone
// when non-nil. It never blocks the caller on the toolchain.
func (c *Cache) EnsureAsync(set SpecSet, mode Mode, onDone func(*Artifact, error)) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.wg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.BuildTimeout)
		defer cancel()
		a, err := c.Ensure(ctx, set, mode)
		if err != nil {
			c.cfg.Logger.Warn("nativecache: background build failed", slog.Any("err", err))
		}
		if onDone != nil {
			onDone(a, err)
		}
	}()
}

// ensureOne loads or builds the artifact for one concrete mode behind the
// per-(key,mode) singleflight.
func (c *Cache) ensureOne(ctx context.Context, key string, gen map[string]string, set SpecSet, mode Mode) (*Artifact, error) {
	slot := key + ":" + mode.String()
	c.mu.Lock()
	if a := c.loaded[slot]; a != nil {
		c.mu.Unlock()
		c.cfg.Obs.event("hit")
		return a, nil
	}
	if cl := c.calls[slot]; cl != nil {
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.art, cl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.calls[slot] = cl
	c.mu.Unlock()

	art, err := c.loadOrBuild(ctx, key, gen, set, mode)
	cl.art, cl.err = art, err

	c.mu.Lock()
	delete(c.calls, slot)
	if err == nil {
		c.loaded[slot] = art
	}
	c.mu.Unlock()
	close(cl.done)

	if err == nil && c.cfg.Obs.Loaded != nil {
		for _, n := range set.names {
			c.cfg.Obs.Loaded(n, mode.String())
		}
	}
	return art, err
}

// loadOrBuild tries the on-disk artifact first (integrity-verified), then
// falls back to a fresh toolchain build.
func (c *Cache) loadOrBuild(ctx context.Context, key string, gen map[string]string, set SpecSet, mode Mode) (*Artifact, error) {
	if a, err := c.loadDisk(key, set, mode); err == nil {
		c.cfg.Obs.event("hit")
		return a, nil
	} else if errors.Is(err, errUnloadable) {
		// The bytes on disk are exactly what a rebuild would produce (the
		// key commits to toolchain and sources); the host process simply
		// cannot load plugins. Don't burn a toolchain run proving it.
		return nil, err
	} else if !notExist(err) {
		c.cfg.Logger.Warn("nativecache: on-disk artifact unusable, rebuilding",
			slog.String("key", shortKey(key)), slog.String("mode", mode.String()), slog.Any("err", err))
	}
	c.cfg.Obs.event("miss")
	t0 := time.Now()
	a, err := c.build(ctx, key, gen, set, mode)
	if c.cfg.Obs.Compile != nil {
		c.cfg.Obs.Compile(time.Since(t0), err == nil)
	}
	if err == nil {
		c.cfg.Logger.Info("nativecache: built artifact",
			slog.String("key", shortKey(key)), slog.String("mode", mode.String()),
			slog.Int("specs", set.Len()), slog.Int64("ms", time.Since(t0).Milliseconds()))
	}
	return a, err
}

func genFileName(spec string) string {
	out := make([]rune, 0, len(spec))
	for _, r := range spec {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return "gen_" + string(out) + ".go"
}

func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
