// Package obs is the cross-cutting observability layer: a lightweight
// span/event tracer for the optimization driver loop, fixed-bucket latency
// histograms, Prometheus text-format rendering, and request-scoped
// structured logging.
//
// The tracer is deliberately minimal — no sampling, no propagation, no
// clock injection — because its single producer is the Fig. 5 driver loop:
// one span per optimization pass, child spans per candidate application
// point covering the pattern-match, dependence-evaluation and
// action-application phases. Spans form a tree built by exactly one
// goroutine; only finishing a root span touches the (mutex-guarded)
// tracer, so parallel sweeps sharing one Tracer never interleave spans
// corruptly.
//
// A nil *Tracer is valid and disabled: every method no-ops and Start
// returns a nil *Span whose methods also no-op, so instrumented code pays
// only a nil check when observability is off.
package obs

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Attribute order is
// preserved (insertion order), which keeps rendered traces stable.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Span is one node of a trace tree: a named, attributed, timed region.
// Spans are built by a single goroutine; a root span becomes visible to
// other goroutines only after End hands it to its Tracer.
type Span struct {
	Name     string
	Attrs    []Attr
	Children []*Span
	// Duration is set by End (or EndWith). Zero until then.
	Duration time.Duration

	start  time.Time
	tracer *Tracer // non-nil on roots only
}

// Tracer collects finished root spans and optionally emits each one as a
// structured log record. The zero value is unusable; construct with
// NewTracer. A nil *Tracer is valid and disabled.
type Tracer struct {
	disabled bool
	collect  bool
	logger   *slog.Logger

	mu    sync.Mutex
	roots []*Span
}

// TracerOption configures NewTracer.
type TracerOption func(*Tracer)

// Collect retains finished root spans for retrieval via Roots/Trees
// (services return them inline; one-shot runs dump them to a file).
func Collect() TracerOption { return func(t *Tracer) { t.collect = true } }

// WithLogger emits every finished root span as one structured log record
// (message "trace") carrying the rendered span tree.
func WithLogger(l *slog.Logger) TracerOption { return func(t *Tracer) { t.logger = l } }

// Disabled constructs the tracer in the off state: Start returns nil and
// nothing is recorded. Used to measure the disabled-path overhead and to
// keep a single code path behind a runtime switch.
func Disabled() TracerOption { return func(t *Tracer) { t.disabled = true } }

// NewTracer builds a tracer.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether the tracer records anything. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && !t.disabled }

// Start opens a root span. Returns nil when the tracer is disabled; all
// *Span methods tolerate a nil receiver, so callers need no guard.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if !t.Enabled() {
		return nil
	}
	return &Span{Name: name, Attrs: attrs, start: time.Now(), tracer: t}
}

// Roots returns a snapshot of the finished root spans collected so far.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Trees renders the collected root spans as JSON-marshalable nodes.
func (t *Tracer) Trees() []*Node {
	roots := t.Roots()
	out := make([]*Node, len(roots))
	for i, s := range roots {
		out[i] = s.Tree()
	}
	return out
}

// finish records a completed root span.
func (t *Tracer) finish(s *Span) {
	if t.collect {
		t.mu.Lock()
		t.roots = append(t.roots, s)
		t.mu.Unlock()
	}
	if t.logger != nil {
		t.logger.LogAttrs(nil, slog.LevelInfo, "trace",
			slog.String("span", s.Name),
			slog.Int64("duration_us", s.Duration.Microseconds()),
			slog.Any("tree", s.Tree()))
	}
}

// Child opens a sub-span. Nil-safe.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Attrs: attrs, start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// Set appends one attribute. Nil-safe.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// End closes the span, stamping its duration. Ending a root span hands it
// to the tracer (collection and/or log emission). Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndWith(time.Since(s.start))
}

// EndWith closes the span with an explicit duration — used for derived
// phases (the match phase is the search minus the accumulated dependence
// evaluation time, which no single time.Since can measure). Nil-safe.
func (s *Span) EndWith(d time.Duration) {
	if s == nil {
		return
	}
	s.Duration = d
	if s.tracer != nil {
		s.tracer.finish(s)
	}
}

// Node is the JSON-marshalable form of a span tree, returned inline by
// /v1/optimize?trace=1 and dumped by opt -trace.
type Node struct {
	Name       string  `json:"name"`
	Attrs      []Field `json:"attrs,omitempty"`
	DurationUS int64   `json:"duration_us"`
	Children   []*Node `json:"children,omitempty"`
}

// Field is one rendered attribute (order-preserving, unlike a map).
type Field struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Tree renders the span (and its subtree) as Nodes. Nil-safe.
func (s *Span) Tree() *Node {
	if s == nil {
		return nil
	}
	n := &Node{Name: s.Name, DurationUS: s.Duration.Microseconds()}
	for _, a := range s.Attrs {
		n.Attrs = append(n.Attrs, Field{Key: a.Key, Value: a.Value})
	}
	for _, c := range s.Children {
		n.Children = append(n.Children, c.Tree())
	}
	return n
}

// Format renders the span tree as indented text with attributes but no
// timestamps or durations — the stable form golden tests compare.
func (s *Span) Format() string {
	var b strings.Builder
	s.format(&b, 0)
	return b.String()
}

func (s *Span) format(b *strings.Builder, depth int) {
	if s == nil {
		return
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.Name)
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%v", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.format(b, depth+1)
	}
}

// FormatSpans renders several trees in order.
func FormatSpans(spans []*Span) string {
	var b strings.Builder
	for _, s := range spans {
		s.format(&b, 0)
	}
	return b.String()
}

// PassStats aggregates the observable work of one fixpoint pass (one
// engine ApplyAll run): the paper's cost counters plus the dependence
// store and undo-log traffic this reproduction adds. The engine emits one
// PassStats per pass through its OnPassStats hook; the optd service folds
// them into its Prometheus counters and histograms.
type PassStats struct {
	Spec         string
	Applications int
	Duration     time.Duration

	// Engine precondition counters (the paper's cost units).
	PatternChecks int64
	DepChecks     int64

	// Dependence store traffic (dep.Graph.Stats deltas): candidate edges
	// examined by Query/Exists, split by edge class, and how the graph was
	// maintained between applications.
	ScalarLookups      int64
	ArrayLookups       int64
	ControlLookups     int64
	IncrementalUpdates int64
	StructuralRebuilds int64

	// Rollbacks counts undo-log rollbacks of failed action applications.
	Rollbacks int64
}
