package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets: observations land in the first bucket whose upper
// bound is >= the value; oversized values land in +Inf.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1) // 1ms, 10ms, 100ms
	h.Observe(500 * time.Microsecond)   // bucket 0
	h.Observe(time.Millisecond)         // bucket 0 (le is inclusive)
	h.Observe(5 * time.Millisecond)     // bucket 1
	h.Observe(50 * time.Millisecond)    // bucket 2
	h.Observe(2 * time.Second)          // +Inf

	s := h.Snapshot()
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	wantSum := (0.0005 + 0.001 + 0.005 + 0.05 + 2.0)
	if diff := s.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

// TestHistogramDefaults: the zero-arg constructor uses the default latency
// bounds.
func TestHistogramDefaults(t *testing.T) {
	h := NewHistogram()
	if len(h.bounds) != len(DefaultLatencyBuckets) {
		t.Fatalf("bounds = %d, want %d", len(h.bounds), len(DefaultLatencyBuckets))
	}
}

// TestHistogramConcurrent: concurrent observation is lock-free and loses
// nothing.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const g, per = 8, 1000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != g*per {
		t.Fatalf("count = %d, want %d", got, g*per)
	}
}

// TestPromHistogram: the exposition renders cumulative buckets, an +Inf
// bucket matching _count, and _sum.
func TestPromHistogram(t *testing.T) {
	h := NewHistogram(0.001, 0.01)
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Second)

	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Header("x_seconds", "Test histogram.", "histogram")
	pw.Histogram("x_seconds", []Label{L("pass", "CTP")}, h.Snapshot())
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# HELP x_seconds Test histogram.",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{pass="CTP",le="0.001"} 1`,
		`x_seconds_bucket{pass="CTP",le="0.01"} 2`,
		`x_seconds_bucket{pass="CTP",le="+Inf"} 3`,
		`x_seconds_count{pass="CTP"} 3`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestPromEscaping: label values with quotes, backslashes and newlines are
// escaped per the exposition format.
func TestPromEscaping(t *testing.T) {
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.IntSample("m", []Label{L("k", "a\"b\\c\nd")}, 1)
	want := `m{k="a\"b\\c\nd"} 1` + "\n"
	if got := b.String(); got != want {
		t.Errorf("escaped sample = %q, want %q", got, want)
	}
}
