package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	Name  string
	Value string
}

// L builds a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers, samples with escaped label values,
// and cumulative histogram buckets. It is a minimal hand-rolled writer so
// the service needs no client library dependency.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// ContentType is the exposition format's content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Err returns the first write error encountered, if any.
func (pw *PromWriter) Err() error { return pw.err }

func (pw *PromWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// Header writes the HELP and TYPE comment lines for a metric family.
// typ is one of counter, gauge, histogram.
func (pw *PromWriter) Header(name, help, typ string) {
	pw.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample writes one sample line.
func (pw *PromWriter) Sample(name string, labels []Label, value float64) {
	pw.printf("%s%s %s\n", name, renderLabels(labels), formatFloat(value))
}

// IntSample writes one sample line with an integer value.
func (pw *PromWriter) IntSample(name string, labels []Label, value int64) {
	pw.printf("%s%s %d\n", name, renderLabels(labels), value)
}

// Histogram writes the cumulative _bucket series plus _sum and _count for
// one labeled histogram. Buckets with a snapshot exemplar carry it as an
// OpenMetrics-style suffix —
//
//	name_bucket{...,le="0.1"} 5 # {trace_id="4bf9..."} 0.0671 1754600000.000
//
// — linking the bucket to a trace retrievable from /v1/traces/<id>.
func (pw *PromWriter) Histogram(name string, labels []Label, s HistogramSnapshot) {
	bucket := func(i int, le string, cum int64) {
		lbls := append(append([]Label(nil), labels...), L("le", le))
		if i < len(s.Exemplars) && s.Exemplars[i] != nil {
			ex := s.Exemplars[i]
			pw.printf("%s%s %d # {trace_id=\"%s\"} %s %.3f\n",
				name+"_bucket", renderLabels(lbls), cum,
				escapeLabel(ex.TraceID), formatFloat(ex.Value),
				float64(ex.Time.UnixMilli())/1000)
			return
		}
		pw.IntSample(name+"_bucket", lbls, cum)
	}
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		bucket(i, formatFloat(b), cum)
	}
	cum += s.Counts[len(s.Counts)-1]
	bucket(len(s.Counts)-1, "+Inf", cum)
	pw.Sample(name+"_sum", labels, s.Sum)
	pw.IntSample(name+"_count", labels, s.Count)
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP text: backslash and newline only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
