package obs

import (
	"strings"
	"testing"
	"time"
)

func TestObserveWithExemplar(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	h.Observe(5 * time.Millisecond)
	h.ObserveWithExemplar(50*time.Millisecond, "aaaa")
	h.ObserveWithExemplar(70*time.Millisecond, "bbbb") // same bucket: replaces
	h.ObserveWithExemplar(2*time.Second, "cccc")       // +Inf bucket
	h.ObserveWithExemplar(3*time.Millisecond, "")      // no trace: plain observe

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Exemplars == nil || len(s.Exemplars) != 4 {
		t.Fatalf("exemplars = %+v", s.Exemplars)
	}
	if s.Exemplars[0] != nil {
		t.Fatalf("bucket 0 exemplar = %+v, want none", s.Exemplars[0])
	}
	if ex := s.Exemplars[1]; ex == nil || ex.TraceID != "bbbb" || ex.Value != 0.07 {
		t.Fatalf("bucket 1 exemplar = %+v, want latest (bbbb)", ex)
	}
	if ex := s.Exemplars[3]; ex == nil || ex.TraceID != "cccc" {
		t.Fatalf("+Inf exemplar = %+v", ex)
	}

	// A histogram that never saw an exemplar snapshots with a nil slice, so
	// existing renderings are byte-identical.
	plain := NewHistogram(0.01)
	plain.Observe(time.Millisecond)
	if snap := plain.Snapshot(); snap.Exemplars != nil {
		t.Fatalf("plain snapshot exemplars = %+v", snap.Exemplars)
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1, 1)
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond) // bucket 0.001
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond) // bucket 0.1
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 0.001 {
		t.Fatalf("p50 = %v", q)
	}
	if q := s.Quantile(0.95); q != 0.1 {
		t.Fatalf("p95 = %v", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	// Everything in the +Inf bucket floors at the last bound.
	over := NewHistogram(0.001)
	over.Observe(time.Second)
	if q := over.Snapshot().Quantile(0.5); q != 0.001 {
		t.Fatalf("overflow quantile = %v", q)
	}
}

// TestPromExemplarGolden pins the exact exposition of exemplar-carrying
// buckets: the OpenMetrics-style `# {trace_id="..."} value timestamp`
// suffix, and the unchanged classic line for buckets without one.
func TestPromExemplarGolden(t *testing.T) {
	snap := HistogramSnapshot{
		Bounds: []float64{0.01, 0.1},
		Counts: []int64{3, 1, 1},
		Count:  5,
		Sum:    0.75,
		Exemplars: []*Exemplar{
			nil,
			{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", Value: 0.0671, Time: time.UnixMilli(1754600000123)},
			{TraceID: "00f067aa0ba902b700f067aa0ba902b7", Value: 0.5, Time: time.UnixMilli(1754600001000)},
		},
	}
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Histogram("optd_http_request_duration_seconds", []Label{L("route", "optimize")}, snap)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`optd_http_request_duration_seconds_bucket{route="optimize",le="0.01"} 3`,
		`optd_http_request_duration_seconds_bucket{route="optimize",le="0.1"} 4 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.0671 1754600000.123`,
		`optd_http_request_duration_seconds_bucket{route="optimize",le="+Inf"} 5 # {trace_id="00f067aa0ba902b700f067aa0ba902b7"} 0.5 1754600001.000`,
		`optd_http_request_duration_seconds_sum{route="optimize"} 0.75`,
		`optd_http_request_duration_seconds_count{route="optimize"} 5`,
		``,
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromHistogramWithoutExemplarsUnchanged pins that histograms with no
// exemplars render exactly as before the exemplar extension.
func TestPromHistogramWithoutExemplarsUnchanged(t *testing.T) {
	snap := HistogramSnapshot{Bounds: []float64{0.5}, Counts: []int64{2, 0}, Count: 2, Sum: 0.2}
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Histogram("x_seconds", nil, snap)
	want := "x_seconds_bucket{le=\"0.5\"} 2\nx_seconds_bucket{le=\"+Inf\"} 2\nx_seconds_sum 0.2\nx_seconds_count 2\n"
	if got := b.String(); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}
