package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used for
// pass and HTTP route latencies: 100µs to 10s, roughly logarithmic. Fixed
// buckets keep Observe lock-free and allocation-free.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// JobLatencyBuckets are the histogram bounds (seconds) for asynchronous
// job enqueue→complete latency: jobs sit through queueing, retries and
// backoff, so the range extends well past the per-request buckets — 1ms
// to 10 minutes, roughly logarithmic.
var JobLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30,
	60, 150, 300, 600,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Observe is a binary search plus two atomic adds — no locks — so scrapes
// rendering a snapshot never contend with the hot path recording into it.
type Histogram struct {
	bounds []float64 // ascending upper bounds, seconds; +Inf implicit
	counts []atomic.Int64
	sumNS  atomic.Int64
	count  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (seconds). With no bounds, DefaultLatencyBuckets is used.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	// Binary search for the first bound >= sec; the final slot is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if sec <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// rendering (counters may lag each other by in-flight observations, which
// Prometheus tolerates).
type HistogramSnapshot struct {
	// Bounds are the upper bounds in seconds (the +Inf bucket is implicit).
	Bounds []float64
	// Counts are per-bucket (not cumulative) counts; len(Bounds)+1 entries,
	// the last being the +Inf bucket.
	Counts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the total observed time in seconds.
	Sum float64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sumNS.Load()).Seconds(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
