package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used for
// pass and HTTP route latencies: 100µs to 10s, roughly logarithmic. Fixed
// buckets keep Observe lock-free and allocation-free.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// JobLatencyBuckets are the histogram bounds (seconds) for asynchronous
// job enqueue→complete latency: jobs sit through queueing, retries and
// backoff, so the range extends well past the per-request buckets — 1ms
// to 10 minutes, roughly logarithmic.
var JobLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30,
	60, 150, 300, 600,
}

// Exemplar links one histogram bucket to a concrete stored trace: the
// latest exemplified observation that landed in the bucket, with the trace
// ID to look it up under /v1/traces. Exemplars are immutable once published
// (ObserveWithExemplar swaps in a fresh one atomically).
type Exemplar struct {
	TraceID string
	// Value is the exemplified observation in seconds.
	Value float64
	// Time is when the observation was recorded.
	Time time.Time
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Observe is a binary search plus two atomic adds — no locks — so scrapes
// rendering a snapshot never contend with the hot path recording into it.
type Histogram struct {
	bounds    []float64 // ascending upper bounds, seconds; +Inf implicit
	counts    []atomic.Int64
	exemplars []atomic.Pointer[Exemplar]
	sumNS     atomic.Int64
	count     atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (seconds). With no bounds, DefaultLatencyBuckets is used.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
	return h
}

// bucket locates the slot for an observation: binary search for the first
// bound >= sec; the final slot is +Inf.
func (h *Histogram) bucket(sec float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if sec <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	h.counts[h.bucket(sec)].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// ObserveWithExemplar records one duration and publishes it as the bucket's
// exemplar. Callers pass only trace IDs that resolve in the trace store —
// an exemplar pointing at a dropped trace is worse than none — so plain
// Observe remains the path for unkept traffic.
func (h *Histogram) ObserveWithExemplar(d time.Duration, traceID string) {
	if traceID == "" {
		h.Observe(d)
		return
	}
	sec := d.Seconds()
	i := h.bucket(sec)
	h.counts[i].Add(1)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: sec, Time: time.Now()})
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// rendering (counters may lag each other by in-flight observations, which
// Prometheus tolerates).
type HistogramSnapshot struct {
	// Bounds are the upper bounds in seconds (the +Inf bucket is implicit).
	Bounds []float64
	// Counts are per-bucket (not cumulative) counts; len(Bounds)+1 entries,
	// the last being the +Inf bucket.
	Counts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the total observed time in seconds.
	Sum float64
	// Exemplars holds the latest exemplified observation per bucket (nil
	// entries for buckets without one); len(Bounds)+1 entries when any
	// exemplar exists, nil otherwise.
	Exemplars []*Exemplar
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sumNS.Load()).Seconds(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		if ex := h.exemplars[i].Load(); ex != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]*Exemplar, len(h.counts))
			}
			s.Exemplars[i] = ex
		}
	}
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds from the bucket
// counts: the upper bound of the first bucket whose cumulative count
// reaches q of the total. Observations beyond the last bound estimate as
// the last bound — a floor, which is the honest direction for "is this
// slow?" checks. Returns 0 when the snapshot is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if cum >= rank {
			return b
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
