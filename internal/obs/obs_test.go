package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: a nil tracer and the nil spans it hands out must be fully
// inert — the disabled hot path leans on this.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	s := tr.Start("pass")
	if s != nil {
		t.Fatalf("nil tracer Start = %v, want nil", s)
	}
	c := s.Child("point")
	c.Set("k", 1)
	c.End()
	s.EndWith(time.Second)
	if got := tr.Roots(); got != nil {
		t.Fatalf("nil tracer Roots = %v, want nil", got)
	}
	if got := tr.Trees(); len(got) != 0 {
		t.Fatalf("nil tracer Trees = %v, want empty", got)
	}
	if s.Tree() != nil {
		t.Fatal("nil span Tree != nil")
	}
}

// TestDisabledTracer: Disabled() builds an installed-but-off tracer whose
// Start returns nil, the same inert path as a nil tracer.
func TestDisabledTracer(t *testing.T) {
	tr := NewTracer(Disabled(), Collect())
	if tr.Enabled() {
		t.Fatal("disabled tracer reports enabled")
	}
	if s := tr.Start("pass"); s != nil {
		t.Fatalf("disabled tracer Start = %v, want nil", s)
	}
}

// TestSpanTree builds a small tree and checks structure, attribute order
// and the stable text rendering.
func TestSpanTree(t *testing.T) {
	tr := NewTracer(Collect())
	root := tr.Start("pass", String("spec", "CTP"))
	pt := root.Child("point", Int("index", 0))
	m := pt.Child("match", Int64("pattern_checks", 7))
	m.EndWith(time.Millisecond)
	pt.Set("applied", true)
	pt.End()
	root.Set("applications", 1)
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	want := "pass spec=CTP applications=1\n" +
		"  point index=0 applied=true\n" +
		"    match pattern_checks=7\n"
	if got := roots[0].Format(); got != want {
		t.Errorf("Format:\n%s\nwant:\n%s", got, want)
	}

	// The JSON form preserves attribute order and carries durations.
	raw, err := json.Marshal(tr.Trees())
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, frag := range []string{`"name":"pass"`, `"key":"spec"`, `"value":"CTP"`, `"name":"match"`} {
		if !strings.Contains(text, frag) {
			t.Errorf("JSON missing %s: %s", frag, text)
		}
	}
	if m.Duration != time.Millisecond {
		t.Errorf("EndWith duration = %v, want 1ms", m.Duration)
	}
}

// TestTracerLogger: ending a root span emits one structured "trace" record.
func TestTracerLogger(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(WithLogger(slog.New(slog.NewJSONHandler(&buf, nil))))
	s := tr.Start("pass", String("spec", "DCE"))
	s.End()
	out := buf.String()
	if !strings.Contains(out, `"msg":"trace"`) || !strings.Contains(out, `"span":"pass"`) {
		t.Errorf("log record missing trace fields: %s", out)
	}
}

// TestConcurrentRootFinish: parallel goroutines each building their own
// span tree against one shared tracer must not corrupt collection.
func TestConcurrentRootFinish(t *testing.T) {
	tr := NewTracer(Collect())
	var wg sync.WaitGroup
	const n = 16
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root := tr.Start("pass")
			for j := 0; j < 8; j++ {
				c := root.Child("point", Int("index", j))
				c.End()
			}
			root.End()
		}()
	}
	wg.Wait()
	roots := tr.Roots()
	if len(roots) != n {
		t.Fatalf("collected %d roots, want %d", len(roots), n)
	}
	for _, r := range roots {
		if len(r.Children) != 8 {
			t.Fatalf("root has %d children, want 8", len(r.Children))
		}
	}
}

func TestFormatSpans(t *testing.T) {
	tr := NewTracer(Collect())
	a := tr.Start("a")
	a.End()
	b := tr.Start("b")
	b.End()
	if got := FormatSpans(tr.Roots()); got != "a\nb\n" {
		t.Errorf("FormatSpans = %q", got)
	}
}
