package obs

import (
	"context"
	"io"
	"log/slog"
)

type loggerKey struct{}

// ContextWithLogger returns a context carrying a request-scoped logger
// (typically one annotated with a request ID and route).
func ContextWithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// LoggerFrom returns the context's request-scoped logger, falling back to
// slog.Default. Nil-safe on the context.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if ctx != nil {
		if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok && l != nil {
			return l
		}
	}
	return slog.Default()
}

// NewLogger builds a logger writing to w in the named format: "json"
// selects slog's JSON handler, anything else the text handler. This is
// the single -logfmt implementation both binaries share.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
