package region

import (
	"repro/internal/par"
	"repro/ir"
)

// idStride separates the fresh-ID ranges handed to concurrent regions.
// Statements created during a region's fixpoint draw IDs from
// parent.NextID() + regionIndex*idStride, so two regions can never mint
// the same ID and the IDs a region mints do not depend on which region
// ran first — signatures and seen-sets stay deterministic across worker
// counts.
const idStride = 1 << 20

// RunFunc runs one region's fixpoint on its private sub-program and
// returns the number of applications performed. The sub-program carries
// the parent's statement IDs, its own journal, and a fresh-ID range
// disjoint from every other region's.
type RunFunc func(idx int, sub *ir.Program) (int, error)

// Outcome reports what Execute did.
type Outcome struct {
	Regions  int  // regions executed
	Apps     int  // total applications across all regions
	Fallback bool // budget exhausted: parent untouched, caller must rerun sequentially
}

// Execute runs one fixpoint per region concurrently and splices the
// results back into p in region-index order.
//
// Each region is deep-copied into a private sub-program (original
// statement IDs preserved, declarations shared by value), run is invoked
// on the par pool, and — only after every region has finished — the
// changed regions replace their spans in p through p's journaled
// mutators, first region first, statements in their within-region order.
// The merge is therefore a pure function of the per-region results:
// worker count and goroutine scheduling cannot reorder it. Unchanged
// regions (zero applications) are not touched at all, so their statement
// pointers — and any dependence edges over them — survive the merge.
//
// budget caps the summed application count: when the regions together
// perform budget or more applications, Execute leaves p completely
// untouched and reports Fallback, because only a sequential whole-program
// run can decide which application the cap cuts off. Likewise any region
// error leaves p untouched; the first one (in region order) is returned.
func Execute(p *ir.Program, pt Partition, workers, budget int, run RunFunc) (Outcome, error) {
	n := len(pt.Regions)
	out := Outcome{Regions: n}
	if n == 0 {
		return out, nil
	}
	stmts := p.Stmts()
	subs := make([]*ir.Program, n)
	for i, r := range pt.Regions {
		sub := ir.NewProgram(p.Name)
		sub.Decls = append([]ir.Decl{}, p.Decls...)
		for k := r.Start; k < r.End; k++ {
			c := ir.CloneStmt(stmts[k])
			c.ID = stmts[k].ID
			sub.Append(c)
		}
		sub.SetNextID(p.NextID() + i*idStride)
		subs[i] = sub
	}

	type result struct {
		apps int
		err  error
	}
	results := par.Map(n, workers, func(i int) result {
		apps, err := run(i, subs[i])
		return result{apps: apps, err: err}
	})
	for _, r := range results {
		if r.err != nil {
			return out, r.err
		}
		out.Apps += r.apps
	}
	if budget > 0 && out.Apps >= budget {
		out.Fallback = true
		return out, nil
	}

	// Splice changed regions back, tracking how earlier replacements shift
	// later spans. Region statements are re-cloned into the parent so the
	// sub-programs stay self-consistent (a *Stmt belongs to one program).
	off := 0
	maxNext := p.NextID()
	for i, r := range pt.Regions {
		if nid := subs[i].NextID(); nid > maxNext {
			maxNext = nid
		}
		if results[i].apps == 0 {
			continue
		}
		cur := p.Stmts()
		for k := r.End - 1 + off; k >= r.Start+off; k-- {
			p.Delete(cur[k])
		}
		for j, ss := range subs[i].Stmts() {
			c := ir.CloneStmt(ss)
			c.ID = ss.ID
			p.InsertAt(r.Start+off+j, c)
		}
		off += len(subs[i].Stmts()) - (r.End - r.Start)
	}
	p.SetNextID(maxNext)
	return out, nil
}
