package region_test

import (
	"testing"

	"repro/dep"
	"repro/internal/frontend"
	"repro/internal/proggen"
	"repro/internal/region"
	"repro/internal/specs"
	"repro/ir"
)

func parse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := frontend.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// TestRegionPartitionProperties checks, over a generated corpus, that every
// partition is a true partition — ordered, gap-free, covering the whole
// statement list — and that no dependence edge of any kind connects two
// distinct regions.
func TestRegionPartitionProperties(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 60; seed++ {
		p := proggen.Generate(seed, proggen.Config{MaxStmts: 40})
		g := dep.Compute(p)
		pt := region.Compute(p, g)
		n := p.Len()
		if n == 0 {
			if pt.Len() != 0 {
				t.Fatalf("seed %d: empty program got %d regions", seed, pt.Len())
			}
			continue
		}
		at := 0
		for _, r := range pt.Regions {
			if r.Start != at || r.End <= r.Start {
				t.Fatalf("seed %d: region %+v breaks the cover at %d", seed, r, at)
			}
			at = r.End
		}
		if at != n {
			t.Fatalf("seed %d: partition covers [0,%d) of %d statements", seed, at, n)
		}
		stmts := p.Stmts()
		pos := make(map[int]int, n)
		for i, s := range stmts {
			pos[s.ID] = i
		}
		regionOf := make([]int, n)
		for ri, r := range pt.Regions {
			for k := r.Start; k < r.End; k++ {
				regionOf[k] = ri
			}
		}
		for _, d := range g.Deps {
			if d.Src == g.Entry || d.Dst == g.Entry {
				continue
			}
			si, ok1 := pos[d.Src.ID]
			di, ok2 := pos[d.Dst.ID]
			if !ok1 || !ok2 {
				continue
			}
			if regionOf[si] != regionOf[di] {
				t.Fatalf("seed %d: %v edge %d→%d crosses regions %d/%d",
					seed, d.Kind, si, di, regionOf[si], regionOf[di])
			}
		}
	}
}

// TestRegionIndependentStatementsSplit checks the positive case: two
// statements with no dependence between them land in separate regions.
func TestRegionIndependentStatementsSplit(t *testing.T) {
	t.Parallel()
	p := parse(t, `PROGRAM two
INTEGER a, b
a = 1
b = 2
END`)
	pt := region.Compute(p, dep.Compute(p))
	if pt.Len() != 2 {
		t.Fatalf("independent statements: got %d regions, want 2: %+v", pt.Len(), pt.Regions)
	}
}

// TestRegionAdjacentLoopsStayTogether checks that two dependence-free
// adjacent loops are NOT split: adjacent-loop patterns (fusion) match
// across exactly that seam.
func TestRegionAdjacentLoopsStayTogether(t *testing.T) {
	t.Parallel()
	p := parse(t, `PROGRAM loops
INTEGER i, a(8), b(8)
DO i = 1, 8
a(i) = 1
ENDDO
DO i = 1, 8
b(i) = 2
ENDDO
END`)
	pt := region.Compute(p, dep.Compute(p))
	if pt.Len() != 1 {
		t.Fatalf("adjacent loops: got %d regions, want 1: %+v", pt.Len(), pt.Regions)
	}
}

// TestRegionFlowDependenceBlocksCut checks that a def–use pair never
// separates.
func TestRegionFlowDependenceBlocksCut(t *testing.T) {
	t.Parallel()
	p := parse(t, `PROGRAM chain
INTEGER a, b
a = 1
b = a + 1
END`)
	pt := region.Compute(p, dep.Compute(p))
	if pt.Len() != 1 {
		t.Fatalf("flow-dependent statements split into %d regions: %+v", pt.Len(), pt.Regions)
	}
}

// TestRegionEligibleSpecBuiltins pins the eligibility walk's verdict on every
// built-in: the propagation-style passes are region-eligible, while
// anything matching adjacent loops (FUS), whole-program sets (`all`), or
// statement order (.next/.prev — the aggregation family) is not.
func TestRegionEligibleSpecBuiltins(t *testing.T) {
	t.Parallel()
	want := map[string]bool{
		"CTP": true, "CPP": true, "CFO": true, "DCE": true, "PAR": true,
		"FUS": false, "AGG": false, "AGS": false, "ICM": false, "LUR": false,
	}
	for name, safe := range want {
		if got := specs.RegionSafe(name); got != safe {
			t.Errorf("RegionSafe(%s) = %v, want %v", name, got, safe)
		}
	}
	if specs.RegionSafe("NO_SUCH_SPEC") {
		t.Error("RegionSafe accepted an unknown spec")
	}
	if region.EligibleSpec(nil) {
		t.Error("EligibleSpec accepted a nil spec")
	}
}

// TestRegionExecuteSplicesInOrder runs a two-region Execute whose regions
// finish in opposite order and checks the merge is still region-index
// ordered, journaled, and ID-disjoint.
func TestRegionExecuteSplicesInOrder(t *testing.T) {
	t.Parallel()
	p := parse(t, `PROGRAM two
INTEGER a, b
a = 1
b = 2
END`)
	pt := region.Compute(p, dep.Compute(p))
	if pt.Len() != 2 {
		t.Fatalf("want 2 regions, got %+v", pt.Regions)
	}
	baseNext := p.NextID()
	out, err := region.Execute(p, pt, 2, 0, func(i int, sub *ir.Program) (int, error) {
		s := sub.Stmts()[0]
		ns := ir.CloneStmt(s)
		sub.InsertAt(1, ns) // fresh ID from the region's private range
		return 1, nil
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if out.Apps != 2 || out.Fallback {
		t.Fatalf("outcome = %+v, want 2 apps, no fallback", out)
	}
	stmts := p.Stmts()
	if len(stmts) != 4 {
		t.Fatalf("got %d statements after splice, want 4:\n%s", len(stmts), p.String())
	}
	ids := map[int]bool{}
	for _, s := range stmts {
		if s.ID == 0 || ids[s.ID] {
			t.Fatalf("duplicate or zero ID %d after splice", s.ID)
		}
		ids[s.ID] = true
	}
	// The two inserted statements drew from disjoint per-region ranges.
	if got := stmts[1].ID / (1 << 20); got != baseNext/(1<<20) {
		t.Fatalf("region 0 insert ID %d outside its range", stmts[1].ID)
	}
	if stmts[3].ID < baseNext+(1<<20) {
		t.Fatalf("region 1 insert ID %d collides with region 0's range", stmts[3].ID)
	}
}

// TestRegionExecuteBudgetFallback checks that exhausting
// the application budget reports Fallback with the parent program exactly
// as it was.
func TestRegionExecuteBudgetFallback(t *testing.T) {
	t.Parallel()
	p := parse(t, `PROGRAM two
INTEGER a, b
a = 1
b = 2
END`)
	before := p.String()
	pt := region.Compute(p, dep.Compute(p))
	out, err := region.Execute(p, pt, 2, 2, func(i int, sub *ir.Program) (int, error) {
		sub.Delete(sub.Stmts()[0])
		return 1, nil
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if !out.Fallback {
		t.Fatalf("outcome = %+v, want budget fallback", out)
	}
	if got := p.String(); got != before {
		t.Fatalf("fallback mutated the parent:\nbefore:\n%s\nafter:\n%s", before, got)
	}
}
