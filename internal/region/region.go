// Package region partitions one program into dependence-disjoint regions
// so the match/depend/act fixpoint can run on every region concurrently —
// one private journal per region, merged deterministically — while the
// optimized output stays byte-identical to the sequential engine
// regardless of worker count or scheduling.
//
// A region is a contiguous run of whole top-level units (a top-level loop
// or conditional together with its entire body, or a single flat
// statement). Working in whole units keeps every control-dependence
// frontier inside one region: a branch or loop head and all statements
// control-dependent on it always land together. Two adjacent units stay in
// the same region unless (a) no dependence edge of any kind — flow, anti,
// output or control — crosses the boundary between them, and (b) the units
// on both sides are not both loops (adjacent-loop patterns such as fusion
// match across exactly that seam). Under that cut rule the regions are
// unions of connected components of the statement-level dependence
// relation, so fixpoints in distinct regions cannot interact.
package region

import (
	"repro/dep"
	"repro/internal/gospel"
	"repro/ir"
)

// Region is a contiguous statement-index range [Start, End) of the parent
// program, covering whole top-level units.
type Region struct {
	Start, End int
}

// Partition is an ordered, gap-free cover of a program's statements by
// dependence-disjoint regions.
type Partition struct {
	Regions []Region
}

// Len returns the number of regions.
func (pt Partition) Len() int { return len(pt.Regions) }

// unit is one top-level syntactic unit: a flat statement, or a loop or
// conditional with its whole body.
type unit struct {
	start, end int
	loop       bool
}

func topLevelUnits(p *ir.Program) []unit {
	stmts := p.Stmts()
	var units []unit
	for i := 0; i < len(stmts); {
		start := i
		loop := stmts[i].Kind == ir.SDoHead
		depth := 0
		for i < len(stmts) {
			switch stmts[i].Kind {
			case ir.SDoHead, ir.SIf:
				depth++
			case ir.SDoEnd, ir.SEndIf:
				depth--
			}
			i++
			if depth <= 0 {
				break
			}
		}
		units = append(units, unit{start: start, end: i, loop: loop})
	}
	return units
}

// Compute partitions p into dependence-disjoint regions using an
// already-computed dependence graph (which must describe p's current
// state). Entry-sourced edges are ignored: they model possibly
// uninitialized uses, not coupling between two program points — and a
// genuine cross-region def–use of the same variable always contributes a
// real flow, anti or output edge that blocks the cut on its own.
func Compute(p *ir.Program, g *dep.Graph) Partition {
	stmts := p.Stmts()
	n := len(stmts)
	if n == 0 {
		return Partition{}
	}
	units := topLevelUnits(p)
	if len(units) <= 1 {
		return Partition{Regions: []Region{{Start: 0, End: n}}}
	}
	pos := make(map[int]int, n)
	for i, s := range stmts {
		pos[s.ID] = i
	}
	// A cut before statement index k is blocked when some dependence edge
	// (src, dst) spans it: min < k <= max over the endpoint indices. Built
	// as a difference array so the whole edge list is one linear sweep.
	diff := make([]int, n+2)
	for i := range g.Deps {
		d := &g.Deps[i]
		if d.Src == g.Entry || d.Dst == g.Entry {
			continue
		}
		si, ok := pos[d.Src.ID]
		if !ok {
			continue
		}
		di, ok := pos[d.Dst.ID]
		if !ok {
			continue
		}
		lo, hi := si, di
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			continue
		}
		diff[lo+1]++
		diff[hi+1]--
	}
	blocked := make([]int, n+1)
	run := 0
	for k := 0; k <= n; k++ {
		run += diff[k]
		blocked[k] = run
	}
	var regions []Region
	start := 0
	for u := 0; u+1 < len(units); u++ {
		cut := units[u].end
		if blocked[cut] > 0 {
			continue
		}
		if units[u].loop && units[u+1].loop {
			continue
		}
		regions = append(regions, Region{Start: start, End: cut})
		start = cut
	}
	regions = append(regions, Region{Start: start, End: n})
	return Partition{Regions: regions}
}

// depPreds are the GOSpeL dependence predicates; a quantified Depend
// clause anchored by one of these on an already-bound element can only
// range over edges incident to that element, which a region cut guarantees
// stay inside the region.
var depPreds = map[string]bool{
	"flow_dep":  true,
	"anti_dep":  true,
	"out_dep":   true,
	"ctrl_dep":  true,
	"fused_dep": true,
}

// EligibleSpec reports whether a specification may run region-at-a-time
// with a result identical to the whole-program fixpoint. The walk is
// conservative; anything it cannot prove region-local keeps the spec on
// the whole-program path (which region-parallel execution still
// accelerates by sharding the candidate search):
//
//   - `all` pattern clauses bind the set of matching statements in the
//     whole program, which a region cannot reproduce;
//   - `.next` / `.prev` attributes reach across arbitrary statement
//     boundaries, including region seams;
//   - Adjacent-Loops elements match across exactly the seams the
//     partitioner cuts;
//   - a quantified or element-introducing Depend clause must be anchored —
//     via a dependence predicate or a membership set mentioning an element
//     bound earlier — or its candidate range is the whole program.
func EligibleSpec(s *gospel.Spec) bool {
	if s == nil {
		return false
	}
	for _, td := range s.Types {
		if td.Kind == gospel.KAdjacentLoops {
			return false
		}
	}
	for _, pc := range s.Patterns {
		if pc.Quant == gospel.QAll {
			return false
		}
		if usesOrder(pc.Format) {
			return false
		}
	}
	for _, dc := range s.Depends {
		if usesOrder(dc.Sets) || usesOrder(dc.Conds) {
			return false
		}
		if len(dc.Elems) > 0 || dc.Quant != gospel.QAny {
			if !anchored(dc) {
				return false
			}
		}
	}
	for _, a := range s.Actions {
		if actionUsesOrder(a) {
			return false
		}
	}
	return true
}

// usesOrder reports whether e navigates statement order via .next/.prev.
func usesOrder(e gospel.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case gospel.Attr:
		if x.Name == "next" || x.Name == "prev" {
			return true
		}
		return usesOrder(x.Base)
	case gospel.Call:
		for _, a := range x.Args {
			if usesOrder(a) {
				return true
			}
		}
	case gospel.Binary:
		return usesOrder(x.L) || usesOrder(x.R)
	case gospel.Not:
		return usesOrder(x.E)
	}
	return false
}

func actionUsesOrder(a gospel.Action) bool {
	switch x := a.(type) {
	case gospel.DeleteAction:
		return usesOrder(x.Target)
	case gospel.CopyAction:
		return usesOrder(x.Src) || usesOrder(x.After)
	case gospel.MoveAction:
		return usesOrder(x.Src) || usesOrder(x.After)
	case gospel.AddAction:
		return usesOrder(x.After) || usesOrder(x.Desc)
	case gospel.ModifyAction:
		return usesOrder(x.Target) || usesOrder(x.Value)
	case gospel.ForallAction:
		if usesOrder(x.Set) {
			return true
		}
		for _, b := range x.Body {
			if actionUsesOrder(b) {
				return true
			}
		}
	}
	return false
}

// anchored reports whether dc's candidate range is tied to an element
// bound by an earlier clause: a membership set mentioning one, or a
// dependence predicate with one as an argument.
func anchored(dc gospel.DependClause) bool {
	own := map[string]bool{}
	for _, e := range dc.Elems {
		own[e] = true
	}
	if dc.Sets != nil && mentionsOutside(dc.Sets, own) {
		return true
	}
	found := false
	walkCalls(dc.Conds, func(c gospel.Call) {
		if found || !depPreds[c.Fn] {
			return
		}
		for _, a := range c.Args {
			if mentionsOutside(a, own) {
				found = true
				return
			}
		}
	})
	return found
}

// mentionsOutside reports whether e references an identifier not in own.
func mentionsOutside(e gospel.Expr, own map[string]bool) bool {
	switch x := e.(type) {
	case nil:
		return false
	case gospel.Ident:
		return !own[x.Name]
	case gospel.Attr:
		return mentionsOutside(x.Base, own)
	case gospel.Call:
		for _, a := range x.Args {
			if mentionsOutside(a, own) {
				return true
			}
		}
	case gospel.Binary:
		return mentionsOutside(x.L, own) || mentionsOutside(x.R, own)
	case gospel.Not:
		return mentionsOutside(x.E, own)
	}
	return false
}

func walkCalls(e gospel.Expr, f func(gospel.Call)) {
	switch x := e.(type) {
	case gospel.Call:
		f(x)
		for _, a := range x.Args {
			walkCalls(a, f)
		}
	case gospel.Binary:
		walkCalls(x.L, f)
		walkCalls(x.R, f)
	case gospel.Not:
		walkCalls(x.E, f)
	case gospel.Attr:
		walkCalls(x.Base, f)
	}
}
