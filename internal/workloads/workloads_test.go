package workloads

import (
	"testing"

	"repro/internal/interp"
)

func TestTenWorkloads(t *testing.T) {
	if len(All) != 10 {
		t.Fatalf("the paper used ten programs; have %d", len(All))
	}
	seen := map[string]bool{}
	for _, w := range All {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestWorkloadsParseValidateRun(t *testing.T) {
	for _, w := range All {
		p := w.Program()
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		r, err := interp.Run(p, w.Input, interp.Config{})
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if len(r.Output) == 0 {
			t.Errorf("%s: produces no output (experiments need observable results)", w.Name)
		}
		if r.Counts.Total() == 0 {
			t.Errorf("%s: no work executed", w.Name)
		}
	}
}

func TestKnownResults(t *testing.T) {
	// newton: sqrt(2) after 8 iterations.
	w, err := Get("newton")
	if err != nil {
		t.Fatal(err)
	}
	r, err := interp.Run(w.Program(), w.Input, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Output[0].AsFloat()
	if got < 1.41 || got > 1.4143 {
		t.Errorf("newton sqrt(2) = %v", got)
	}

	// matmul: c(1,1) = Σ_k a(1,k)·b(k,1) = Σ_k (1+k)(k−1) = Σ (k²−1) = 204−8 = 196.
	m, _ := Get("matmul")
	r, err = interp.Run(m.Program(), m.Input, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Output[0].AsFloat() != 196 {
		t.Errorf("matmul c(1,1) = %v, want 196", r.Output[0])
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload must error")
	}
	if len(Names()) != len(All) {
		t.Error("Names mismatch")
	}
}
