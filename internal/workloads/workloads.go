// Package workloads provides the ten MiniF test programs used by the
// experiments. The paper ran its optimizers over ten FORTRAN programs from
// HOMPACK (homotopy-method nonlinear equation solvers) and a
// numerical-analysis test suite (FFT, Newton's method, ...); those sources
// are not available, so these programs are synthetic stand-ins built around
// the same numerical kernels and seeded with the same kinds of optimization
// opportunities the paper reports: constant definitions feeding loop bounds
// (CTP enabling LUR), dead and foldable code, copies in two programs only,
// interchangeable and rotatable nests, fusable and alignable adjacent
// loops, parallelizable and inherently serial loops. See DESIGN.md's
// substitution table.
package workloads

import (
	"fmt"

	"repro/internal/frontend"
	"repro/ir"
)

// Workload is one benchmark program plus the input its READ statements
// consume.
type Workload struct {
	Name   string
	Desc   string
	Source string
	Input  []ir.Value
}

// Program parses the workload's source. Each call returns a fresh program.
func (w Workload) Program() *ir.Program {
	return frontend.MustParse(w.Source)
}

// All lists the ten workloads in a fixed order.
var All = []Workload{
	{
		Name: "newton",
		Desc: "Newton's method for sqrt(a) (numerical-analysis suite)",
		Source: `
PROGRAM newton
INTEGER k, n
REAL x, a, fx, dfx, xold, result, scale
READ a
n = 8
scale = 4.0 / 2.0
x = a / scale
DO k = 1, n
  xold = x
  fx = xold * xold - a
  dfx = 2.0 * xold
  x = xold - fx / dfx
ENDDO
result = x
PRINT result
END`,
		Input: []ir.Value{ir.FloatVal(2.0)},
	},
	{
		Name: "saxpy",
		Desc: "two adjacent vector updates (BLAS-style kernel)",
		Source: `
PROGRAM saxpy
INTEGER i, n
REAL x(16), y(16), z(16), alpha
READ alpha
n = 16
DO i = 1, n
  x(i) = i * 0.5
ENDDO
DO i = 1, 16
  y(i) = alpha * x(i)
ENDDO
DO i = 1, 16
  z(i) = y(i) + x(i)
ENDDO
PRINT z(1), z(16)
END`,
		Input: []ir.Value{ir.FloatVal(3.0)},
	},
	{
		Name: "matmul",
		Desc: "dense matrix multiply (interchangeable nest, parallel outer loops)",
		Source: `
PROGRAM matmul
INTEGER i, j, k, n, nsq
REAL a(8,8), b(8,8), c(8,8)
n = 8
nsq = n * n
DO i = 1, n
  DO j = 1, n
    a(i,j) = i + j
    b(i,j) = i - j
  ENDDO
ENDDO
DO i = 1, n
  DO j = 1, n
    c(i,j) = 0.0
    DO k = 1, n
      c(i,j) = c(i,j) + a(i,k) * b(k,j)
    ENDDO
  ENDDO
ENDDO
PRINT c(1,1), c(8,8), nsq
END`,
	},
	{
		Name: "stencil3d",
		Desc: "3-D relaxation sweep (pure triple nest: circulation candidate)",
		Source: `
PROGRAM stencil3d
INTEGER i, j, k, m
REAL u(6,6,6), v(6,6,6)
m = 6
DO i = 1, m
  DO j = 1, m
    DO k = 1, m
      v(i,j,k) = i * 36 + j * 6 + k
    ENDDO
  ENDDO
ENDDO
DO i = 1, m
  DO j = 1, m
    DO k = 1, m
      u(i,j,k) = v(i,j,k) * 2.0
    ENDDO
  ENDDO
ENDDO
PRINT u(1,1,1), u(6,6,6)
END`,
	},
	{
		Name: "gauss",
		Desc: "Gaussian elimination (triangular bounds block interchange)",
		Source: `
PROGRAM gauss
INTEGER i, j, k, n, cols, last
REAL a(8,9), m
n = 8
cols = n + 1
last = n - 1
DO i = 1, n
  DO j = 1, cols
    a(i,j) = i * j + 1
  ENDDO
ENDDO
DO k = 1, last
  DO i = k + 1, n
    m = a(i,k) / a(k,k)
    DO j = k, cols
      a(i,j) = a(i,j) - m * a(k,j)
    ENDDO
  ENDDO
ENDDO
PRINT a(8,9)
END`,
	},
	{
		Name: "jacobi",
		Desc: "2-D Jacobi smoothing step (stencil with spilled temporaries)",
		Source: `
PROGRAM jacobi
INTEGER i, j, it, iters, size
REAL a(10,10), b(10,10)
iters = 4
size = 10
DO i = 1, size
  DO j = 1, size
    a(i,j) = i + j * 2
    b(i,j) = 0.0
  ENDDO
ENDDO
DO it = 1, iters
  DO i = 2, 9
    DO j = 2, 9
      b(i,j) = (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1)) / 4.0
    ENDDO
  ENDDO
  DO i = 2, 9
    DO j = 2, 9
      a(i,j) = b(i,j)
    ENDDO
  ENDDO
ENDDO
PRINT a(5,5)
END`,
	},
	{
		Name: "trapezoid",
		Desc: "trapezoid-rule integration (serial reduction, copy after loop)",
		Source: `
PROGRAM trapezoid
INTEGER i, n
REAL lo, hi, range, h, s, x, fx, total
n = 16
lo = 0.0
hi = 2.0
range = hi - lo
h = range / 16.0
s = 0.0
DO i = 1, n
  x = lo + i * h
  fx = x * x
  s = s + fx * h
ENDDO
total = s
PRINT total
END`,
	},
	{
		Name: "fft",
		Desc: "FFT-flavoured strided butterflies (even/odd lanes independent)",
		Source: `
PROGRAM fft
INTEGER i, n, half
REAL re(32), im(32), w
READ w
n = 16
half = 8
DO i = 1, n
  re(i) = i * 1.0
  im(i) = 0.0
ENDDO
DO i = 1, half
  re(2*i) = re(2*i) + w * re(2*i-1)
ENDDO
DO i = 1, half
  im(2*i) = im(2*i) - w * im(2*i-1)
ENDDO
PRINT re(16), im(16)
END`,
		Input: []ir.Value{ir.FloatVal(0.5)},
	},
	{
		Name: "homotopy",
		Desc: "HOMPACK-style predictor/corrector step (bump-then-fuse pair)",
		Source: `
PROGRAM homotopy
INTEGER i, n
REAL x(16), dx(16), r(16), step
READ step
n = 10
DO i = 1, n
  x(i) = i * 0.25
  dx(i) = 1.0 / i
ENDDO
DO i = 1, 10
  x(i) = x(i) + step * dx(i)
ENDDO
DO i = 3, 12
  r(i) = step * 2.0
ENDDO
PRINT x(10), r(12)
END`,
		Input: []ir.Value{ir.FloatVal(0.125)},
	},
	{
		Name: "interact",
		Desc: "the Section-4 interaction program: FUS, INX and LUR all apply and enable/disable one another",
		Source: `
PROGRAM interact
INTEGER i, j, k
REAL a(16,16), b(16), c(16), d(16), e(16), t
! segment A: a tight nest (odd-trip outer, even-trip inner) followed by an
! adjacent loop with the same header: fusing kills the tight nest (FUS
! disables INX), interchanging kills the header match (INX disables FUS),
! unrolling touches only the inner loop (LUR keeps INX enabled).
DO i = 1, 15
  DO j = 1, 16
    a(i,j) = a(i,j) + 1.0
  ENDDO
ENDDO
DO i = 1, 15
  b(i) = c(i) * 2.0
ENDDO
! segment B: two fusable even-trip loops; unrolling the first desynchronizes
! the headers (LUR disables FUS). The second resists unrolling (k appears as
! a direct operand).
DO k = 1, 16
  d(k) = c(k) * 2.0
ENDDO
DO k = 1, 16
  t = k * 0.1
  e(k) = d(k) + t
ENDDO
PRINT a(15,16), b(15), e(16)
END`,
	},
}

// Get returns the named workload.
func Get(name string) (Workload, error) {
	for _, w := range All {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists the workload names in order.
func Names() []string {
	out := make([]string, len(All))
	for i, w := range All {
		out[i] = w.Name
	}
	return out
}
