package frontend

import (
	"fmt"

	"repro/ir"
)

// newTemp returns a fresh compiler temporary name that cannot collide with a
// declared variable.
func (p *parser) newTemp() string {
	for {
		p.ntemp++
		name := fmt.Sprintf("t_%d", p.ntemp)
		if _, taken := p.declMap[name]; !taken {
			return name
		}
	}
}

// lowerAssign emits quads computing rhs into dst. The top-level operator
// lands directly in dst so that "a = b + c" becomes a single quad.
func (p *parser) lowerAssign(dst ir.Operand, rhs expr) {
	switch e := rhs.(type) {
	case binop:
		a := p.lowerToOperand(e.l)
		b := p.lowerToOperand(e.r)
		p.prog.Append(&ir.Stmt{Kind: ir.SAssign, Dst: dst, Op: e.op, A: a, B: b})
	case negop:
		a := p.lowerToOperand(e.e)
		p.prog.Append(&ir.Stmt{Kind: ir.SAssign, Dst: dst, Op: ir.OpSub, A: ir.IntOp(0), B: a})
	default:
		a := p.lowerToOperand(rhs)
		p.prog.Append(&ir.Stmt{Kind: ir.SAssign, Dst: dst, Op: ir.OpCopy, A: a})
	}
}

// lowerToOperand reduces an expression to a single operand, emitting temp
// assignments for interior operations.
func (p *parser) lowerToOperand(e expr) ir.Operand {
	switch e := e.(type) {
	case numLit:
		return ir.ConstOp(e.val)
	case varRef:
		return ir.VarOp(e.name)
	case arrayRef:
		return ir.ArrayOp(e.name, p.lowerSubs(e.subs)...)
	default:
		t := p.newTemp()
		p.lowerAssign(ir.VarOp(t), e)
		return ir.VarOp(t)
	}
}

// lowerSubs converts subscript expressions into affine LinExprs, spilling
// any non-affine subscript into a temporary (which the dependence analyzer
// then treats conservatively).
func (p *parser) lowerSubs(subs []expr) []ir.LinExpr {
	out := make([]ir.LinExpr, len(subs))
	for i, s := range subs {
		if lin, ok := affine(s); ok {
			out[i] = lin
			continue
		}
		t := p.newTemp()
		p.lowerAssign(ir.VarOp(t), s)
		out[i] = ir.VarExpr(t)
	}
	return out
}

// affine attempts to express e as an affine combination of scalar variables.
func affine(e expr) (ir.LinExpr, bool) {
	switch e := e.(type) {
	case numLit:
		if e.val.IsFloat {
			return ir.LinExpr{}, false
		}
		return ir.ConstExpr(e.val.Int), true
	case varRef:
		return ir.VarExpr(e.name), true
	case negop:
		inner, ok := affine(e.e)
		if !ok {
			return ir.LinExpr{}, false
		}
		return inner.Scale(-1), true
	case binop:
		l, lok := affine(e.l)
		r, rok := affine(e.r)
		switch e.op {
		case ir.OpAdd:
			if lok && rok {
				return l.Add(r), true
			}
		case ir.OpSub:
			if lok && rok {
				return l.Sub(r), true
			}
		case ir.OpMul:
			if lok && rok {
				if l.IsConst() {
					return r.Scale(l.Normalize().Const), true
				}
				if r.IsConst() {
					return l.Scale(r.Normalize().Const), true
				}
			}
		}
	}
	return ir.LinExpr{}, false
}
