// Package frontend parses MiniF, a small FORTRAN-77-flavoured language, into
// the ir package's quad representation. MiniF stands in for the FORTRAN
// programs of the paper's test suites (HOMPACK and the numerical-analysis
// suite); it has numeric scalars and arrays, DO loops, block IFs, and
// READ/PRINT statements, which together cover every construct the paper's
// optimizations inspect.
//
// Grammar (case-insensitive keywords, ! comments to end of line):
//
//	program  = "PROGRAM" ident decl* stmt* "END"
//	decl     = ("INTEGER"|"REAL") item ("," item)*
//	item     = ident [ "(" int ("," int)* ")" ]
//	stmt     = ident [subs] "=" expr
//	         | "DO" ident "=" expr "," expr ["," expr] stmt* "ENDDO"
//	         | "IF" "(" expr relop expr ")" "THEN" stmt* ["ELSE" stmt*] "ENDIF"
//	         | "PRINT" expr ("," expr)*
//	         | "READ" ident [subs]
//	relop    = ".LT."|".LE."|".GT."|".GE."|".EQ."|".NE."|"<"|"<="|">"|">="|"=="|"!="
//	expr     = arithmetic over + - * / MOD, unary -, parentheses, calls none
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tReal
	tKeyword // PROGRAM DO ENDDO IF THEN ELSE ENDIF PRINT READ END INTEGER REAL MOD
	tRelop   // normalized to "<", "<=", ">", ">=", "==", "!="
	tPunct   // = , ( ) + - * /
)

type token struct {
	kind tokKind
	text string
	line int
}

var minifKeywords = map[string]bool{
	"PROGRAM": true, "DO": true, "ENDDO": true, "IF": true, "THEN": true,
	"ELSE": true, "ENDIF": true, "PRINT": true, "READ": true, "END": true,
	"INTEGER": true, "REAL": true, "MOD": true, "DOALL": true,
}

var dotRelops = map[string]string{
	".LT.": "<", ".LE.": "<=", ".GT.": ">", ".GE.": ">=", ".EQ.": "==", ".NE.": "!=",
}

// Error is a positioned frontend error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minif:%d: %s", e.Line, e.Msg) }

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '!' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '=':
			l.emit(tRelop, "!=")
			l.pos += 2
		case c == '!':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '.' && l.pos+1 < len(l.src) && unicode.IsLetter(rune(l.src[l.pos+1])):
			if err := l.dotRelop(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.number()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.identOrKeyword()
		default:
			if err := l.operator(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
}

func (l *lexer) dotRelop() error {
	end := strings.IndexByte(l.src[l.pos+1:], '.')
	if end < 0 {
		return &Error{l.line, "unterminated .RELOP."}
	}
	word := strings.ToUpper(l.src[l.pos : l.pos+end+2])
	rel, ok := dotRelops[word]
	if !ok {
		return &Error{l.line, fmt.Sprintf("unknown operator %q", word)}
	}
	l.emit(tRelop, rel)
	l.pos += end + 2
	return nil
}

func (l *lexer) number() {
	start := l.pos
	isReal := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !isReal {
			// Not a relop like "1.EQ." — require a digit or end after the dot
			// for it to belong to the number.
			if l.pos+1 < len(l.src) && unicode.IsLetter(rune(l.src[l.pos+1])) {
				break
			}
			isReal = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && isReal {
			// exponent
			j := l.pos + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j < len(l.src) && unicode.IsDigit(rune(l.src[j])) {
				l.pos = j + 1
				for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
					l.pos++
				}
			}
			break
		}
		break
	}
	text := l.src[start:l.pos]
	if isReal {
		l.emit(tReal, text)
	} else {
		l.emit(tInt, text)
	}
}

func (l *lexer) identOrKeyword() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.pos++
		} else {
			break
		}
	}
	word := l.src[start:l.pos]
	if minifKeywords[strings.ToUpper(word)] {
		l.emit(tKeyword, strings.ToUpper(word))
	} else {
		l.emit(tIdent, strings.ToLower(word))
	}
}

func (l *lexer) operator() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "==", "!=":
		l.emit(tRelop, two)
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '<', '>':
		l.emit(tRelop, string(c))
		l.pos++
	case '=', ',', '(', ')', '+', '-', '*', '/':
		l.emit(tPunct, string(c))
		l.pos++
	default:
		return &Error{l.line, fmt.Sprintf("unexpected character %q", c)}
	}
	return nil
}
