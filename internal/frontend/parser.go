package frontend

import (
	"fmt"
	"strconv"
	"strings"

	"repro/ir"
)

// Parse parses MiniF source into an IR program.
func Parse(src string) (*ir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded workloads.
func MustParse(src string) *ir.Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// expression AST, internal to the frontend; lowered to quads immediately.
type expr interface{ isExpr() }

type numLit struct{ val ir.Value }
type varRef struct{ name string }
type arrayRef struct {
	name string
	subs []expr
}
type binop struct {
	op   ir.Opcode
	l, r expr
}
type negop struct{ e expr }

func (numLit) isExpr()   {}
func (varRef) isExpr()   {}
func (arrayRef) isExpr() {}
func (binop) isExpr()    {}
func (negop) isExpr()    {}

type parser struct {
	toks    []token
	pos     int
	prog    *ir.Program
	ntemp   int
	declMap map[string]ir.Decl
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return &Error{p.cur().line, fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tPunct || t.text != s {
		return p.errf("expected %q, found %q", s, t.text)
	}
	p.pos++
	return nil
}

func (p *parser) expectKeyword(s string) error {
	t := p.cur()
	if t.kind != tKeyword || t.text != s {
		return p.errf("expected %s, found %q", s, t.text)
	}
	p.pos++
	return nil
}

func (p *parser) atKeyword(s string) bool {
	t := p.cur()
	return t.kind == tKeyword && t.text == s
}

func (p *parser) program() (*ir.Program, error) {
	if err := p.expectKeyword("PROGRAM"); err != nil {
		return nil, err
	}
	name := p.cur()
	if name.kind != tIdent {
		return nil, p.errf("expected program name")
	}
	p.pos++
	p.prog = ir.NewProgram(name.text)
	p.declMap = make(map[string]ir.Decl)

	for p.atKeyword("INTEGER") || p.atKeyword("REAL") {
		if err := p.decl(); err != nil {
			return nil, err
		}
	}
	if err := p.stmtsUntil("END"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return p.prog, nil
}

func (p *parser) decl() error {
	isFloat := p.next().text == "REAL"
	for {
		t := p.cur()
		if t.kind != tIdent {
			return p.errf("expected identifier in declaration")
		}
		p.pos++
		d := ir.Decl{Name: t.text, IsFloat: isFloat}
		if p.cur().kind == tPunct && p.cur().text == "(" {
			p.pos++
			for {
				dim := p.cur()
				if dim.kind != tInt {
					return p.errf("array dimensions must be integer literals")
				}
				n, err := strconv.ParseInt(dim.text, 10, 64)
				if err != nil || n <= 0 {
					return p.errf("bad array dimension %q", dim.text)
				}
				d.Dims = append(d.Dims, n)
				p.pos++
				if p.cur().kind == tPunct && p.cur().text == "," {
					p.pos++
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
		}
		if _, dup := p.declMap[d.Name]; dup {
			return p.errf("duplicate declaration of %s", d.Name)
		}
		p.declMap[d.Name] = d
		p.prog.Decls = append(p.prog.Decls, d)
		if p.cur().kind == tPunct && p.cur().text == "," {
			p.pos++
			continue
		}
		return nil
	}
}

// stmtsUntil parses statements until one of the stop keywords is the current
// token (which is left unconsumed).
func (p *parser) stmtsUntil(stops ...string) error {
	stopSet := make(map[string]bool, len(stops))
	for _, s := range stops {
		stopSet[s] = true
	}
	for {
		t := p.cur()
		if t.kind == tEOF {
			return p.errf("unexpected end of file (missing %s?)", strings.Join(stops, "/"))
		}
		if t.kind == tKeyword && stopSet[t.text] {
			return nil
		}
		if err := p.stmt(); err != nil {
			return err
		}
	}
}

func (p *parser) stmt() error {
	t := p.cur()
	switch {
	case t.kind == tKeyword && (t.text == "DO" || t.text == "DOALL"):
		return p.doLoop(t.text == "DOALL")
	case t.kind == tKeyword && t.text == "IF":
		return p.ifStmt()
	case t.kind == tKeyword && t.text == "PRINT":
		return p.printStmt()
	case t.kind == tKeyword && t.text == "READ":
		return p.readStmt()
	case t.kind == tIdent:
		return p.assign()
	default:
		return p.errf("unexpected token %q at statement start", t.text)
	}
}

func (p *parser) doLoop(parallel bool) error {
	p.pos++ // DO
	lcv := p.cur()
	if lcv.kind != tIdent {
		return p.errf("expected loop variable after DO")
	}
	p.pos++
	if err := p.expectPunct("="); err != nil {
		return err
	}
	initE, err := p.expr()
	if err != nil {
		return err
	}
	if err := p.expectPunct(","); err != nil {
		return err
	}
	finalE, err := p.expr()
	if err != nil {
		return err
	}
	step := expr(numLit{ir.IntVal(1)})
	if p.cur().kind == tPunct && p.cur().text == "," {
		p.pos++
		step, err = p.expr()
		if err != nil {
			return err
		}
	}
	initOp := p.lowerToOperand(initE)
	finalOp := p.lowerToOperand(finalE)
	stepOp := p.lowerToOperand(step)
	p.prog.Append(&ir.Stmt{Kind: ir.SDoHead, LCV: lcv.text,
		Init: initOp, Final: finalOp, Step: stepOp, Parallel: parallel})
	if err := p.stmtsUntil("ENDDO"); err != nil {
		return err
	}
	p.pos++ // ENDDO
	p.prog.Append(&ir.Stmt{Kind: ir.SDoEnd})
	return nil
}

func (p *parser) ifStmt() error {
	p.pos++ // IF
	if err := p.expectPunct("("); err != nil {
		return err
	}
	lhs, err := p.expr()
	if err != nil {
		return err
	}
	rel := p.cur()
	if rel.kind != tRelop {
		return p.errf("expected relational operator in IF condition")
	}
	p.pos++
	rhs, err := p.expr()
	if err != nil {
		return err
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectKeyword("THEN"); err != nil {
		return err
	}
	a := p.lowerToOperand(lhs)
	b := p.lowerToOperand(rhs)
	p.prog.Append(&ir.Stmt{Kind: ir.SIf, A: a, Rel: relopOf(rel.text), B: b})
	if err := p.stmtsUntil("ELSE", "ENDIF"); err != nil {
		return err
	}
	if p.atKeyword("ELSE") {
		p.pos++
		p.prog.Append(&ir.Stmt{Kind: ir.SElse})
		if err := p.stmtsUntil("ENDIF"); err != nil {
			return err
		}
	}
	p.pos++ // ENDIF
	p.prog.Append(&ir.Stmt{Kind: ir.SEndIf})
	return nil
}

func relopOf(s string) ir.Relop {
	switch s {
	case "<":
		return ir.RelLT
	case "<=":
		return ir.RelLE
	case ">":
		return ir.RelGT
	case ">=":
		return ir.RelGE
	case "==":
		return ir.RelEQ
	case "!=":
		return ir.RelNE
	}
	panic("frontend: bad relop " + s)
}

func (p *parser) printStmt() error {
	p.pos++ // PRINT
	var args []ir.Operand
	for {
		e, err := p.expr()
		if err != nil {
			return err
		}
		args = append(args, p.lowerToOperand(e))
		if p.cur().kind == tPunct && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	p.prog.Append(&ir.Stmt{Kind: ir.SPrint, Args: args})
	return nil
}

func (p *parser) readStmt() error {
	p.pos++ // READ
	dst, err := p.lvalue()
	if err != nil {
		return err
	}
	p.prog.Append(&ir.Stmt{Kind: ir.SRead, Dst: dst})
	return nil
}

func (p *parser) lvalue() (ir.Operand, error) {
	t := p.cur()
	if t.kind != tIdent {
		return ir.Operand{}, p.errf("expected variable")
	}
	p.pos++
	if p.cur().kind == tPunct && p.cur().text == "(" {
		subs, err := p.subscripts()
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.ArrayOp(t.text, p.lowerSubs(subs)...), nil
	}
	return ir.VarOp(t.text), nil
}

func (p *parser) assign() error {
	dst, err := p.lvalue()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	rhs, err := p.expr()
	if err != nil {
		return err
	}
	p.lowerAssign(dst, rhs)
	return nil
}

func (p *parser) subscripts() ([]expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var subs []expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		subs = append(subs, e)
		if p.cur().kind == tPunct && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return subs, nil
}

// expr parses addition-level expressions.
func (p *parser) expr() (expr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tPunct && (t.text == "+" || t.text == "-") {
			p.pos++
			right, err := p.term()
			if err != nil {
				return nil, err
			}
			op := ir.OpAdd
			if t.text == "-" {
				op = ir.OpSub
			}
			left = binop{op: op, l: left, r: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) term() (expr, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tPunct && (t.text == "*" || t.text == "/"):
			p.pos++
			right, err := p.factor()
			if err != nil {
				return nil, err
			}
			op := ir.OpMul
			if t.text == "/" {
				op = ir.OpDiv
			}
			left = binop{op: op, l: left, r: right}
		case t.kind == tKeyword && t.text == "MOD":
			p.pos++
			right, err := p.factor()
			if err != nil {
				return nil, err
			}
			left = binop{op: ir.OpMod, l: left, r: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) factor() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tPunct && t.text == "-":
		p.pos++
		e, err := p.factor()
		if err != nil {
			return nil, err
		}
		if n, ok := e.(numLit); ok {
			// fold literal negation so "-1" is a constant operand
			if n.val.IsFloat {
				return numLit{ir.FloatVal(-n.val.Float)}, nil
			}
			return numLit{ir.IntVal(-n.val.Int)}, nil
		}
		return negop{e}, nil
	case t.kind == tPunct && t.text == "+":
		p.pos++
		return p.factor()
	case t.kind == tPunct && t.text == "(":
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tInt:
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return numLit{ir.IntVal(n)}, nil
	case t.kind == tReal:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad real %q", t.text)
		}
		return numLit{ir.FloatVal(f)}, nil
	case t.kind == tIdent:
		p.pos++
		if p.cur().kind == tPunct && p.cur().text == "(" {
			subs, err := p.subscripts()
			if err != nil {
				return nil, err
			}
			return arrayRef{name: t.text, subs: subs}, nil
		}
		return varRef{name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}
