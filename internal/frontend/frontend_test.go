package frontend

import (
	"strings"
	"testing"

	"repro/ir"
)

func TestParseSimpleProgram(t *testing.T) {
	src := `
PROGRAM demo
INTEGER n, i
REAL a(100), s
n = 100
s = 0.0
DO i = 1, n
  a(i) = a(i) * 2.0
  s = s + a(i)
ENDDO
PRINT s
END
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Decls) != 4 {
		t.Errorf("decls = %d", len(p.Decls))
	}
	d, ok := p.DeclOf("a")
	if !ok || !d.IsFloat || len(d.Dims) != 1 || d.Dims[0] != 100 {
		t.Errorf("decl a = %+v", d)
	}
	// n=100, s=0.0, do, a(i)=..., s=..., enddo, print
	if p.Len() != 7 {
		t.Fatalf("stmt count = %d\n%s", p.Len(), p)
	}
	loops := ir.Loops(p)
	if len(loops) != 1 || loops[0].LCV() != "i" {
		t.Fatalf("loops = %v", loops)
	}
	body := loops[0].Body(p)
	if len(body) != 2 {
		t.Fatalf("body = %d", len(body))
	}
	mul := body[0]
	if mul.Kind != ir.SAssign || mul.Op != ir.OpMul || !mul.Dst.IsArray() {
		t.Errorf("first body stmt = %s", ir.FormatStmt(mul))
	}
	if got := ir.FormatStmt(mul); got != "a(i) := a(i) * 2" {
		t.Errorf("FormatStmt = %q", got)
	}
}

func TestParseExpressionsLowering(t *testing.T) {
	src := `
PROGRAM lower
INTEGER x, y, z
x = y + z * 3 - 2
END
`
	p := MustParse(src)
	// z*3 → temp; y + temp → temp2; temp2 - 2 → x.
	// Top-level lands in x, so: t1 := z*3 ; t2 := y + t1 ; x := t2 - 2
	if p.Len() != 3 {
		t.Fatalf("stmt count = %d\n%s", p.Len(), p)
	}
	last := p.At(2)
	if last.Dst.Name != "x" || last.Op != ir.OpSub {
		t.Errorf("last = %s", ir.FormatStmt(last))
	}
}

func TestParsePrecedenceAndParens(t *testing.T) {
	p := MustParse("PROGRAM p\nINTEGER x, a, b, c\nx = (a + b) * c\nEND")
	// t1 := a+b ; x := t1 * c
	if p.Len() != 2 {
		t.Fatalf("stmt count = %d\n%s", p.Len(), p)
	}
	if p.At(0).Op != ir.OpAdd || p.At(1).Op != ir.OpMul {
		t.Errorf("precedence lowering wrong:\n%s", p)
	}
}

func TestParseUnaryMinusAndMod(t *testing.T) {
	p := MustParse("PROGRAM p\nINTEGER x, y\nx = -3\ny = x MOD 2\nEND")
	if !p.At(0).A.IsConst() || p.At(0).A.Val.Int != -3 {
		t.Errorf("literal negation should fold: %s", ir.FormatStmt(p.At(0)))
	}
	if p.At(1).Op != ir.OpMod {
		t.Errorf("MOD parse: %s", ir.FormatStmt(p.At(1)))
	}

	p2 := MustParse("PROGRAM p\nINTEGER x, y\nx = -y\nEND")
	s := p2.At(0)
	if s.Op != ir.OpSub || !s.A.IsConst() || s.A.Val.Int != 0 || s.B.Name != "y" {
		t.Errorf("unary minus on variable should lower to 0-y: %s", ir.FormatStmt(s))
	}
}

func TestParseIfElse(t *testing.T) {
	src := `
PROGRAM branch
INTEGER x, y
READ x
IF (x .GT. 0) THEN
  y = 1
ELSE
  y = 2
ENDIF
PRINT y
END
`
	p := MustParse(src)
	kinds := []ir.StmtKind{ir.SRead, ir.SIf, ir.SAssign, ir.SElse, ir.SAssign, ir.SEndIf, ir.SPrint}
	if p.Len() != len(kinds) {
		t.Fatalf("stmt count = %d\n%s", p.Len(), p)
	}
	for i, k := range kinds {
		if p.At(i).Kind != k {
			t.Errorf("stmt %d kind = %v, want %v", i, p.At(i).Kind, k)
		}
	}
	ifs := p.At(1)
	if ifs.Rel != ir.RelGT || ifs.A.Name != "x" || !ifs.B.IsConst() {
		t.Errorf("if condition = %s", ir.FormatStmt(ifs))
	}
}

func TestParseRelopSpellings(t *testing.T) {
	for spelling, want := range map[string]ir.Relop{
		".LT.": ir.RelLT, ".LE.": ir.RelLE, ".GT.": ir.RelGT,
		".GE.": ir.RelGE, ".EQ.": ir.RelEQ, ".NE.": ir.RelNE,
		"<": ir.RelLT, "<=": ir.RelLE, ">": ir.RelGT,
		">=": ir.RelGE, "==": ir.RelEQ, "!=": ir.RelNE,
	} {
		src := "PROGRAM p\nINTEGER x\nIF (x " + spelling + " 1) THEN\nx = 0\nENDIF\nEND"
		p, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", spelling, err)
			continue
		}
		if p.At(0).Rel != want {
			t.Errorf("%s parsed as %v, want %v", spelling, p.At(0).Rel, want)
		}
	}
}

func TestParseNestedLoopsWithStep(t *testing.T) {
	src := `
PROGRAM nest
INTEGER i, j
REAL a(10,10)
DO i = 1, 10, 2
  DO j = 1, 10
    a(i,j) = 0.0
  ENDDO
ENDDO
END
`
	p := MustParse(src)
	loops := ir.Loops(p)
	if len(loops) != 2 {
		t.Fatalf("loops = %d", len(loops))
	}
	if !loops[0].Head.Step.IsConst() || loops[0].Head.Step.Val.Int != 2 {
		t.Errorf("step = %v", loops[0].Head.Step)
	}
	pairs := ir.TightPairs(p)
	if len(pairs) != 1 {
		t.Errorf("tight pairs = %d", len(pairs))
	}
}

func TestParseAffineSubscripts(t *testing.T) {
	src := `
PROGRAM subs
INTEGER i, j, k
REAL a(100), b(10,10)
DO i = 1, 10
  a(2*i+1) = a(i-1)
  b(i, i+j) = b(j, 3)
  a(i*j) = 1.0
ENDDO
END
`
	p := MustParse(src)
	var stmts []*ir.Stmt
	for _, s := range p.Stmts() {
		if s.Kind == ir.SAssign && s.Dst.IsArray() {
			stmts = append(stmts, s)
		}
	}
	if len(stmts) != 3 {
		t.Fatalf("array assigns = %d\n%s", len(stmts), p)
	}
	if got := stmts[0].Dst.Subs[0].String(); got != "2*i+1" {
		t.Errorf("affine subscript = %q", got)
	}
	if got := stmts[0].A.Subs[0].String(); got != "i-1" {
		t.Errorf("affine subscript = %q", got)
	}
	// Non-affine i*j must be spilled into a temp subscript.
	nonAffine := stmts[2]
	sub := nonAffine.Dst.Subs[0]
	if sub.IsConst() || len(sub.Terms) != 1 || !strings.HasPrefix(sub.Terms[0].Var, "t_") {
		t.Errorf("non-affine subscript should be temp, got %v", sub)
	}
}

func TestParseDoall(t *testing.T) {
	p := MustParse("PROGRAM p\nINTEGER i\nREAL a(10)\nDOALL i = 1, 10\na(i) = 1.0\nENDDO\nEND")
	if !p.At(0).Parallel {
		t.Error("DOALL should set Parallel")
	}
}

func TestParseComments(t *testing.T) {
	src := "PROGRAM p ! program header\nINTEGER x ! decl\nx = 1 ! set x\n! full-line comment\nEND"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Errorf("stmt count = %d", p.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"missing program", "INTEGER x\nEND"},
		{"unterminated do", "PROGRAM p\nINTEGER i\nDO i = 1, 10\nEND"},
		{"stray enddo", "PROGRAM p\nENDDO\nEND"},
		{"bad relop", "PROGRAM p\nINTEGER x\nIF (x .XX. 1) THEN\nENDIF\nEND"},
		{"missing then", "PROGRAM p\nINTEGER x\nIF (x > 1)\nx = 0\nENDIF\nEND"},
		{"bad dim", "PROGRAM p\nREAL a(n)\nEND"},
		{"dup decl", "PROGRAM p\nINTEGER x\nINTEGER x\nEND"},
		{"garbage expr", "PROGRAM p\nINTEGER x\nx = )\nEND"},
		{"unclosed paren", "PROGRAM p\nINTEGER x\nx = (1 + 2\nEND"},
		{"eof in loop", "PROGRAM p\nINTEGER i\nDO i = 1, 2\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse("PROGRAM p\nINTEGER x\nx = @\nEND")
	if err == nil {
		t.Fatal("expected error")
	}
	fe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if fe.Line != 3 {
		t.Errorf("line = %d, want 3", fe.Line)
	}
	if !strings.Contains(fe.Error(), "minif:3:") {
		t.Errorf("message = %q", fe.Error())
	}
}

func TestRealLiterals(t *testing.T) {
	p := MustParse("PROGRAM p\nREAL x\nx = 1.5e2\nEND")
	if !p.At(0).A.IsConst() || p.At(0).A.Val.AsFloat() != 150 {
		t.Errorf("real literal = %v", p.At(0).A)
	}
	p2 := MustParse("PROGRAM p\nREAL x\nx = 2.\nEND")
	if p2.At(0).A.Val.AsFloat() != 2 {
		t.Errorf("trailing-dot real = %v", p2.At(0).A)
	}
}

func TestNumberDotRelopAmbiguity(t *testing.T) {
	// "1.EQ." must lex as integer 1 followed by .EQ., not real "1." then junk.
	p, err := Parse("PROGRAM p\nINTEGER x\nIF (1 .EQ. x) THEN\nx = 0\nENDIF\nEND")
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0).Rel != ir.RelEQ {
		t.Error("relop lost")
	}
	p2, err := Parse("PROGRAM p\nINTEGER x\nIF (1.EQ.x) THEN\nx = 0\nENDIF\nEND")
	if err != nil {
		t.Fatal(err)
	}
	if p2.At(0).Rel != ir.RelEQ {
		t.Error("tight relop lost")
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	p, err := Parse("program p\ninteger i\ndo i = 1, 3\nenddo\nend")
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Loops(p)) != 1 {
		t.Error("lowercase keywords should parse")
	}
}
