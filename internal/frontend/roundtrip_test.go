package frontend

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/proggen"
	"repro/ir"
)

// TestMiniFRoundTrip: rendering an IR program back to MiniF and re-parsing
// must give a structurally equal program. (The test lives in the frontend
// package to avoid an ir → frontend dependency.)
func TestMiniFRoundTrip(t *testing.T) {
	sources := []string{
		`
PROGRAM rt1
INTEGER n, i
REAL a(16), b(8,8), s
n = 16
s = 0.0
READ s
DO i = 1, n
  a(i) = i * 0.5
  b(1,2) = a(i) + s
ENDDO
DO i = 10, 2, -2
  a(i) = a(i-1) MOD 3
ENDDO
IF (s .GE. 0.5) THEN
  s = s - 1.0
ELSE
  s = 0.0
ENDIF
PRINT s, a(1), b(1,2)
END`,
		`
PROGRAM rt2
INTEGER i, j
REAL c(10,10)
DOALL i = 1, 10
  DO j = 2, 9
    c(i,j) = c(i,j-1) + 1.0
  ENDDO
ENDDO
END`,
	}
	for _, src := range sources {
		p1 := MustParse(src)
		rendered := ir.ToMiniF(p1)
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, rendered)
		}
		if !p1.Equal(p2) {
			t.Fatalf("round trip changed the program\noriginal:\n%srendered:\n%s",
				p1, rendered)
		}
	}
}

// TestMiniFRoundTripRandom: the same property over generated programs,
// checking both structure and behaviour.
func TestMiniFRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p1 := proggen.Generate(seed, proggen.Config{})
		rendered := ir.ToMiniF(p1)
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("seed %d: re-parse failed: %v\n%s", seed, err, rendered)
		}
		if !p1.Equal(p2) {
			t.Fatalf("seed %d: round trip changed the program\noriginal:\n%srendered:\n%s",
				seed, p1, rendered)
		}
		r1, err := interp.Run(p1, nil, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := interp.Run(p2, nil, interp.Config{})
		if err != nil {
			t.Fatalf("seed %d: rendered program fails: %v", seed, err)
		}
		if !interp.SameOutput(r1, r2) {
			t.Fatalf("seed %d: round trip changed behaviour", seed)
		}
	}
}

// TestMiniFRoundTripAfterOptimization: optimized programs (which contain
// statement shapes the frontend never produces directly, such as doubled
// loop steps and doall headers) also survive the round trip.
func TestMiniFRoundTripAfterOptimization(t *testing.T) {
	src := `
PROGRAM rt3
INTEGER n, i
REAL a(16), b(16)
n = 16
DO i = 1, n
  a(i) = i * 1.5
ENDDO
DO i = 1, 16
  b(i) = a(i) + 1.0
ENDDO
PRINT b(16)
END`
	p := MustParse(src)
	// Hand-rolled transformations standing in for optimizer output.
	loops := ir.Loops(p)
	loops[0].Head.Parallel = true
	loops[1].Head.Step = ir.IntOp(2)
	rendered := ir.ToMiniF(p)
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("%v\n%s", err, rendered)
	}
	if !p.Equal(p2) {
		t.Fatalf("optimized round trip changed the program:\n%s", rendered)
	}
}
