package engine

import (
	"repro/dep"
	"repro/internal/gospel"
	"repro/ir"
)

// matchDepend advances through the Depend clauses, enumerating candidate
// bindings for each clause's new elements and checking membership and
// dependence conditions, with backtracking across clauses.
func (o *Optimizer) matchDepend(ctx *context, idx int, env Env, yield func(Env) bool) bool {
	if idx >= len(o.Spec.Depends) {
		return yield(env)
	}
	dc := o.Spec.Depends[idx]

	var newElems []string
	for _, n := range dc.Elems {
		if _, bound := env[n]; !bound {
			newElems = append(newElems, n)
		}
	}

	// No new bindings: the clause is a pure condition on what is bound.
	if len(newElems) == 0 {
		holds := o.clauseHolds(ctx, dc, env)
		switch dc.Quant {
		case gospel.QNo:
			if holds {
				return true // clause violated: this binding path fails
			}
		default:
			if !holds {
				return true
			}
		}
		return o.matchDepend(ctx, idx+1, env, yield)
	}

	candidates := o.clauseCandidates(ctx, dc, env, newElems)

	switch dc.Quant {
	case gospel.QAny:
		for _, cand := range candidates {
			env2 := withBindings(env, cand)
			if !o.clauseHolds(ctx, dc, env2) {
				continue
			}
			if !o.matchDepend(ctx, idx+1, env2, yield) {
				return false
			}
		}
		return true
	case gospel.QNo:
		for _, cand := range candidates {
			if o.clauseHolds(ctx, dc, withBindings(env, cand)) {
				return true // a witness exists: precondition fails here
			}
		}
		return o.matchDepend(ctx, idx+1, env, yield)
	case gospel.QAll:
		var set []*ir.Stmt
		for _, cand := range candidates {
			env2 := withBindings(env, cand)
			if !o.clauseHolds(ctx, dc, env2) {
				continue
			}
			if v, ok := cand[newElems[0]]; ok && v.Kind == VStmt {
				set = append(set, v.Stmt)
			}
		}
		env2 := env.clone()
		env2[newElems[0]] = setVal(set)
		return o.matchDepend(ctx, idx+1, env2, yield)
	}
	return true
}

// clauseHolds evaluates the full clause body (sets AND conds) under env.
func (o *Optimizer) clauseHolds(ctx *context, dc gospel.DependClause, env Env) bool {
	if dc.Sets != nil && !ctx.evalBool(env, dc.Sets) {
		return false
	}
	if dc.Conds != nil && !ctx.evalBool(env, dc.Conds) {
		return false
	}
	return true
}

// clauseCandidates enumerates candidate bindings for the clause's new
// elements. Three generators exist, mirroring the paper's two membership
// implementations plus the dependence-anchored search of the dep routine:
//
//  1. members-first: draw candidates from the clause's mem() sets;
//  2. deps-first: draw candidates from dependence edges anchored at
//     already-bound statements;
//  3. heuristic: pick per clause whichever generator enumerates fewer
//     candidates (what GENesis was changed to do, Section 4).
//
// Position variables are always bound from dependence edges.
func (o *Optimizer) clauseCandidates(ctx *context, dc gospel.DependClause, env Env, newElems []string) []Env {
	// Split new elements into statement/loop variables and position vars.
	var stmtVars, posVars []string
	for _, n := range newElems {
		if _, declared := o.Spec.DeclKind(n); declared {
			stmtVars = append(stmtVars, n)
		} else {
			posVars = append(posVars, n)
		}
	}

	anchored := o.anchoredPreds(dc, env, stmtVars)
	memSets := o.memSetsFor(ctx, dc, env, stmtVars)

	strategy := o.Strategy
	if strategy == StrategyHeuristic {
		strategy = o.chooseStrategy(ctx, dc, env, stmtVars, anchored, memSets)
	}
	if strategy == StrategyDeps {
		// Even when forced, the deps-first order is only sound when the
		// dependence edges enumerate every possible candidate.
		for _, n := range stmtVars {
			if dc.Conds == nil || !depComplete(dc.Conds, n) {
				strategy = StrategyMembers
				break
			}
		}
	}

	var envs []Env
	if strategy == StrategyDeps && len(anchored) > 0 {
		envs = o.depCandidates(ctx, env, stmtVars, posVars, anchored)
	} else {
		envs = o.memberCandidates(ctx, env, stmtVars, memSets)
		// Position variables still come from edges: extend each candidate
		// with the positions of matching dependences.
		if len(posVars) > 0 {
			envs = o.extendWithPositions(ctx, env, envs, dc, posVars)
		}
	}
	return envs
}

// anchoredPred is a dependence predicate in the clause generating
// candidates: either one new element with the other endpoint bound, or a
// pair predicate binding two new elements from each edge's endpoints (the
// paper's implementation 2: "consider the dependences of one statement and
// check the corresponding dependent statements for membership").
type anchoredPred struct {
	call    gospel.Call
	newName string
	newIsrc bool // the new element is the dependence source
	// pair predicates bind both endpoints.
	pair             bool
	srcName, dstName string
}

// anchoredPreds scans the clause conditions for dependence predicates that
// can generate candidates for new elements.
func (o *Optimizer) anchoredPreds(dc gospel.DependClause, env Env, stmtVars []string) []anchoredPred {
	isNew := map[string]bool{}
	for _, n := range stmtVars {
		isNew[n] = true
	}
	var out []anchoredPred
	var walk func(e gospel.Expr)
	walk = func(e gospel.Expr) {
		switch e := e.(type) {
		case gospel.Binary:
			walk(e.L)
			walk(e.R)
		case gospel.Not:
			walk(e.E)
		case gospel.Call:
			if _, ok := depPredName(e.Fn); !ok || len(e.Args) < 2 {
				return
			}
			srcName, srcIsIdent := identName(e.Args[0])
			dstName, dstIsIdent := identName(e.Args[1])
			srcNew := srcIsIdent && isNew[srcName]
			dstNew := dstIsIdent && isNew[dstName]
			switch {
			case srcNew && dstNew:
				out = append(out, anchoredPred{call: e, pair: true,
					srcName: srcName, dstName: dstName})
			case srcNew:
				out = append(out, anchoredPred{call: e, newName: srcName, newIsrc: true})
			case dstNew:
				out = append(out, anchoredPred{call: e, newName: dstName, newIsrc: false})
			}
		}
	}
	if dc.Conds != nil {
		walk(dc.Conds)
	}
	return out
}

func depPredName(fn string) (dep.Kind, bool) {
	switch fn {
	case "flow_dep":
		return dep.Flow, true
	case "anti_dep":
		return dep.Anti, true
	case "out_dep":
		return dep.Output, true
	case "ctrl_dep":
		return dep.Control, true
	}
	return 0, false
}

func identName(e gospel.Expr) (string, bool) {
	id, ok := e.(gospel.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// memSetsFor resolves the clause's mem(X, set) qualifications for new
// elements into concrete statement sets.
func (o *Optimizer) memSetsFor(ctx *context, dc gospel.DependClause, env Env, stmtVars []string) map[string][]*ir.Stmt {
	out := map[string][]*ir.Stmt{}
	if dc.Sets == nil {
		return out
	}
	isNew := map[string]bool{}
	for _, n := range stmtVars {
		isNew[n] = true
	}
	var walk func(e gospel.Expr)
	walk = func(e gospel.Expr) {
		switch e := e.(type) {
		case gospel.Binary:
			walk(e.L)
			walk(e.R)
		case gospel.Call:
			if e.Fn != "mem" || len(e.Args) != 2 {
				return
			}
			name, ok := identName(e.Args[0])
			if !ok || !isNew[name] {
				return
			}
			if _, have := out[name]; have {
				return // first qualification wins for enumeration
			}
			set, err := ctx.evalSet(env, e.Args[1])
			if err == nil {
				out[name] = set
			}
		}
	}
	walk(dc.Sets)
	return out
}

// depComplete reports whether every assignment satisfying conds must
// satisfy some dependence predicate mentioning name — the condition under
// which enumerating dependence edges is a complete candidate generator.
func depComplete(conds gospel.Expr, name string) bool {
	switch e := conds.(type) {
	case gospel.Call:
		if _, ok := depPredName(e.Fn); !ok || len(e.Args) < 2 {
			return false
		}
		if id, ok := e.Args[0].(gospel.Ident); ok && id.Name == name {
			return true
		}
		if id, ok := e.Args[1].(gospel.Ident); ok && id.Name == name {
			return true
		}
		return false
	case gospel.Binary:
		switch e.Op {
		case "and":
			return depComplete(e.L, name) || depComplete(e.R, name)
		case "or":
			return depComplete(e.L, name) && depComplete(e.R, name)
		}
	}
	return false
}

// chooseStrategy implements the paper's heuristic: compare the number of
// candidates each enumeration order would examine and take the smaller.
// Dependence-edge enumeration is only eligible when it is complete for
// every element (see depComplete).
func (o *Optimizer) chooseStrategy(ctx *context, dc gospel.DependClause, env Env, stmtVars []string, anchored []anchoredPred, memSets map[string][]*ir.Stmt) Strategy {
	if len(anchored) == 0 {
		return StrategyMembers
	}
	for _, n := range stmtVars {
		if dc.Conds == nil || !depComplete(dc.Conds, n) {
			return StrategyMembers
		}
	}
	memCount := 1
	for _, n := range stmtVars {
		if set, ok := memSets[n]; ok {
			memCount *= len(set)
		} else {
			memCount *= ctx.prog.Len()
		}
	}
	// Estimate the edge enumeration exactly as depCandidates would run it.
	depCount := 0
	covered := map[string]bool{}
	for _, ap := range anchored {
		kind, _ := depPredName(ap.call.Fn)
		switch {
		case ap.pair:
			depCount += len(ctx.graph.Query(kind, nil, nil, predQueryDir(ap.call)))
			covered[ap.srcName] = true
			covered[ap.dstName] = true
		case ap.newIsrc:
			if dv, err := ctx.eval(env, ap.call.Args[1]); err == nil && dv.Kind == VStmt {
				depCount += len(ctx.graph.Query(kind, nil, dv.Stmt, predQueryDir(ap.call)))
				covered[ap.newName] = true
			}
		default:
			if sv, err := ctx.eval(env, ap.call.Args[0]); err == nil && sv.Kind == VStmt {
				depCount += len(ctx.graph.Query(kind, sv.Stmt, nil, predQueryDir(ap.call)))
				covered[ap.newName] = true
			}
		}
	}
	// Elements not generable from any dependence predicate force the
	// members-first order.
	for _, n := range stmtVars {
		if !covered[n] {
			return StrategyMembers
		}
	}
	if depCount <= memCount {
		return StrategyDeps
	}
	return StrategyMembers
}

// memberCandidates enumerates the cartesian product of each new element's
// membership set (or all statements / loops when unqualified).
func (o *Optimizer) memberCandidates(ctx *context, env Env, stmtVars []string, memSets map[string][]*ir.Stmt) []Env {
	envs := []Env{{}}
	for _, n := range stmtVars {
		kind, _ := o.Spec.DeclKind(n)
		var vals []Value
		if kind == gospel.KStmt {
			if set, ok := memSets[n]; ok {
				for _, s := range set {
					vals = append(vals, stmtVal(s))
				}
			} else {
				for _, s := range ctx.prog.Stmts() {
					vals = append(vals, stmtVal(s))
				}
			}
		} else {
			for _, l := range ir.Loops(ctx.prog) {
				vals = append(vals, loopVal(l))
			}
		}
		var next []Env
		for _, e := range envs {
			for _, v := range vals {
				e2 := e.clone()
				e2[n] = v
				next = append(next, e2)
			}
		}
		envs = next
	}
	return envs
}

// predQueryDir returns the direction pattern to enumerate a predicate's
// edges with: carried/independent qualifiers cannot be pushed into the
// query, so they enumerate every edge of the kind and let the clause
// condition filter.
func predQueryDir(c gospel.Call) dep.Vector {
	if c.CarriedBy != "" || c.Independent {
		return nil
	}
	return c.Dir
}

// depCandidates enumerates candidates from dependence edges anchored at
// bound statements (the Fig. 7 dep routine's LST search mode), binding the
// new statement and any position variables from each edge. All anchored
// predicates mentioning an element contribute candidates — a disjunctive
// condition (out_dep(Si, Sm) OR anti_dep(Sm, Si)) can witness through any
// of its predicates.
func (o *Optimizer) depCandidates(ctx *context, env Env, stmtVars, posVars []string, anchored []anchoredPred) []Env {
	// Pair predicates bind two new elements from each edge (the paper's
	// implementation 2).
	if len(stmtVars) == 2 {
		var pairs []anchoredPred
		for _, ap := range anchored {
			if ap.pair &&
				((ap.srcName == stmtVars[0] && ap.dstName == stmtVars[1]) ||
					(ap.srcName == stmtVars[1] && ap.dstName == stmtVars[0])) {
				pairs = append(pairs, ap)
			}
		}
		if len(pairs) > 0 {
			var envs []Env
			for _, ap := range pairs {
				kind, _ := depPredName(ap.call.Fn)
				edges := ctx.graph.Query(kind, nil, nil, predQueryDir(ap.call))
				ctx.cost.DepChecks += len(edges)
				for _, edge := range edges {
					e := Env{
						ap.srcName: stmtVal(edge.Src),
						ap.dstName: stmtVal(edge.Dst),
					}
					bindPositions(e, posVars, edge)
					envs = append(envs, e)
				}
			}
			return dedupEnvs(envs)
		}
	}

	byName := map[string][]anchoredPred{}
	for _, ap := range anchored {
		if ap.pair {
			continue
		}
		byName[ap.newName] = append(byName[ap.newName], ap)
	}
	envs := []Env{{}}
	for _, n := range stmtVars {
		aps := byName[n]
		if len(aps) == 0 {
			// Fall back to all statements for elements without an anchor.
			var next []Env
			for _, e := range envs {
				for _, s := range ctx.prog.Stmts() {
					e2 := e.clone()
					e2[n] = stmtVal(s)
					next = append(next, e2)
				}
			}
			envs = next
			continue
		}
		var next []Env
		for _, e := range envs {
			full := withBindings(env, e)
			for _, ap := range aps {
				kind, _ := depPredName(ap.call.Fn)
				var edges []dep.Dependence
				if ap.newIsrc {
					if dv, err := ctx.eval(full, ap.call.Args[1]); err == nil && dv.Kind == VStmt {
						edges = ctx.graph.Query(kind, nil, dv.Stmt, predQueryDir(ap.call))
					}
				} else {
					if sv, err := ctx.eval(full, ap.call.Args[0]); err == nil && sv.Kind == VStmt {
						edges = ctx.graph.Query(kind, sv.Stmt, nil, predQueryDir(ap.call))
					}
				}
				ctx.cost.DepChecks += len(edges)
				for _, edge := range edges {
					e2 := e.clone()
					if ap.newIsrc {
						e2[n] = stmtVal(edge.Src)
					} else {
						e2[n] = stmtVal(edge.Dst)
					}
					bindPositions(e2, posVars, edge)
					next = append(next, e2)
				}
			}
		}
		envs = next
	}
	return dedupEnvs(envs)
}

// extendWithPositions extends member-enumerated candidates with position
// bindings from the dependence edges that the clause's predicates match.
func (o *Optimizer) extendWithPositions(ctx *context, env Env, envs []Env, dc gospel.DependClause, posVars []string) []Env {
	var preds []gospel.Call
	var walk func(e gospel.Expr)
	walk = func(e gospel.Expr) {
		switch e := e.(type) {
		case gospel.Binary:
			walk(e.L)
			walk(e.R)
		case gospel.Not:
			walk(e.E)
		case gospel.Call:
			if _, ok := depPredName(e.Fn); ok {
				preds = append(preds, e)
			}
		}
	}
	if dc.Conds != nil {
		walk(dc.Conds)
	}
	if len(preds) == 0 {
		return envs
	}
	var out []Env
	for _, cand := range envs {
		full := withBindings(env, cand)
		pred := preds[0]
		kind, _ := depPredName(pred.Fn)
		sv, serr := ctx.eval(full, pred.Args[0])
		dv, derr := ctx.eval(full, pred.Args[1])
		if serr != nil || derr != nil || sv.Kind != VStmt || dv.Kind != VStmt {
			out = append(out, cand)
			continue
		}
		edges := ctx.graph.Query(kind, sv.Stmt, dv.Stmt, pred.Dir)
		ctx.cost.DepChecks += len(edges)
		for _, edge := range edges {
			e2 := cand.clone()
			bindPositions(e2, posVars, edge)
			out = append(out, e2)
		}
	}
	return dedupEnvs(out)
}

// bindPositions binds position variables from a dependence edge: the
// operand position involved at the use end of the dependence (DstPos for
// flow and output, SrcPos for anti).
func bindPositions(e Env, posVars []string, edge dep.Dependence) {
	pos := edge.DstPos
	if edge.Kind == dep.Anti {
		pos = edge.SrcPos
	}
	for _, pv := range posVars {
		e[pv] = numVal(int64(pos))
	}
}

func dedupEnvs(envs []Env) []Env {
	seen := map[string]bool{}
	var out []Env
	for _, e := range envs {
		sig := envSignature(e)
		if !seen[sig] {
			seen[sig] = true
			out = append(out, e)
		}
	}
	return out
}
