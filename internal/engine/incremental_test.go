package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/specs"
	"repro/internal/workloads"
)

// TestIncrementalMatchesFullRecompute runs every built-in optimization over
// every workload twice — once with the default incremental dependence
// maintenance, once with WithoutIncremental's full dep.Compute after each
// application — and requires identical application counts and final programs.
// This is the end-to-end guarantee on top of the dep-level differential test.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	for _, w := range workloads.All {
		for _, name := range specs.Ten {
			pi := w.Program()
			ai, err := specs.MustCompile(name).ApplyAll(pi)
			if err != nil {
				t.Fatalf("%s/%s incremental: %v", w.Name, name, err)
			}
			pf := w.Program()
			af, err := specs.MustCompile(name, engine.WithoutIncremental()).ApplyAll(pf)
			if err != nil {
				t.Fatalf("%s/%s full recompute: %v", w.Name, name, err)
			}
			if len(ai) != len(af) {
				t.Errorf("%s/%s: %d applications incremental, %d with full recompute",
					w.Name, name, len(ai), len(af))
			}
			if !pi.Equal(pf) {
				t.Errorf("%s/%s: final programs differ\nincremental:\n%s\nfull recompute:\n%s",
					w.Name, name, pi, pf)
			}
		}
	}
}
