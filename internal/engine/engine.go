package engine

import (
	"fmt"
	"time"

	"repro/dep"
	"repro/internal/gospel"
	"repro/internal/obs"
	"repro/ir"
)

// PassTimingFunc observes one completed ApplyAll run: the specification
// name, the number of applications performed, and the wall-clock duration.
// Hooks must be safe for concurrent use when the optimizer is shared.
type PassTimingFunc func(spec string, applications int, d time.Duration)

// Optimizer is a compiled GOSpeL specification: the output of GENesis for
// one optimization. It is stateless with respect to programs; Cost is
// accumulated across calls and may be reset with ResetCost.
type Optimizer struct {
	Spec *gospel.Spec
	// Strategy selects the membership-clause evaluation order (Section 4's
	// two implementations and the heuristic).
	Strategy Strategy
	// RecomputeDeps controls whether ApplyAll recomputes the dependence
	// graph after each application (the interactive choice in the paper's
	// constructor-built interface). Default true.
	RecomputeDeps bool
	// IncrementalDeps selects how RecomputeDeps refreshes the graph:
	// incrementally from the change journal (default) or with a full
	// dep.Compute per application (WithoutIncremental — the seed behavior,
	// kept for differential testing and as an escape hatch).
	IncrementalDeps bool
	// MaxApplications bounds ApplyAll as a safety net. When the cap is hit
	// while another application point is still available, ApplyAll returns
	// the applications performed alongside optlib.ErrIterationLimit.
	MaxApplications int
	// OnPassDone, when non-nil, is called at the end of every ApplyAll run
	// with the pass timing (services use this to feed latency metrics).
	OnPassDone PassTimingFunc
	// OnPassStats, when non-nil, is called at the end of every ApplyAll run
	// with the full per-pass observability counters: precondition checks,
	// dependence-store lookups split scalar/array/control, incremental vs
	// structural graph maintenance, and undo-log rollbacks.
	OnPassStats func(obs.PassStats)
	// Tracer, when enabled, receives one span tree per ApplyAll run: a pass
	// span with a child per candidate application point covering the
	// pattern-match, dependence-evaluation and action-application phases.
	// A nil tracer costs only nil checks on the hot path.
	Tracer *obs.Tracer

	cost Cost
}

// Option configures a compiled optimizer.
type Option func(*Optimizer)

// WithStrategy selects the membership evaluation strategy.
func WithStrategy(s Strategy) Option { return func(o *Optimizer) { o.Strategy = s } }

// WithoutRecompute disables dependence recomputation between applications.
func WithoutRecompute() Option { return func(o *Optimizer) { o.RecomputeDeps = false } }

// WithoutIncremental makes ApplyAll rebuild the dependence graph from
// scratch after each application instead of incrementally maintaining it.
func WithoutIncremental() Option { return func(o *Optimizer) { o.IncrementalDeps = false } }

// WithMaxApplications bounds ApplyAll at n applications (n < 1 keeps the
// default). Hitting the bound with work remaining surfaces as
// optlib.ErrIterationLimit.
func WithMaxApplications(n int) Option {
	return func(o *Optimizer) {
		if n >= 1 {
			o.MaxApplications = n
		}
	}
}

// WithPassTiming installs a pass-timing hook called after every ApplyAll.
func WithPassTiming(f PassTimingFunc) Option { return func(o *Optimizer) { o.OnPassDone = f } }

// WithPassStats installs a per-pass statistics hook called after every
// ApplyAll run with the aggregated engine, dependence-store and undo-log
// counters (services fold these into Prometheus metrics).
func WithPassStats(f func(obs.PassStats)) Option {
	return func(o *Optimizer) { o.OnPassStats = f }
}

// WithTracer installs a span tracer on the driver loop. A nil or disabled
// tracer leaves the hot path untraced (nil checks only).
func WithTracer(t *obs.Tracer) Option { return func(o *Optimizer) { o.Tracer = t } }

// Compile turns a checked specification into an optimizer. It performs the
// generator's static work: validating that the specification's element
// types have candidate generators and pre-resolving clause evaluation
// plans.
func Compile(spec *gospel.Spec, opts ...Option) (*Optimizer, error) {
	if spec == nil {
		return nil, fmt.Errorf("engine: nil specification")
	}
	o := &Optimizer{
		Spec:            spec,
		Strategy:        StrategyHeuristic,
		RecomputeDeps:   true,
		IncrementalDeps: true,
		MaxApplications: 1000,
	}
	for _, opt := range opts {
		opt(o)
	}
	// The set_up phase of the generated code: verify every pattern element
	// is generable.
	for _, pc := range spec.Patterns {
		if pc.Quant == gospel.QAll && len(pc.Elems) != 1 {
			return nil, fmt.Errorf("engine: 'all' pattern clauses take a single element")
		}
		for _, n := range pc.Elems {
			if _, ok := spec.DeclKind(n); !ok {
				return nil, fmt.Errorf("engine: pattern element %s undeclared", n)
			}
		}
	}
	return o, nil
}

// Cost returns the accumulated cost counters.
func (o *Optimizer) Cost() Cost { return o.cost }

// ResetCost clears the counters.
func (o *Optimizer) ResetCost() { o.cost = Cost{} }

// Name returns the specification name.
func (o *Optimizer) Name() string { return o.Spec.Name }

// newContext builds the evaluation context for one run.
func (o *Optimizer) newContext(p *ir.Program, g *dep.Graph) *context {
	return &context{prog: p, graph: g, cost: &o.cost, opt: o}
}

// Preconditions finds every binding of the specification's precondition in
// the current program: the application points. The dependence graph must
// describe the current program state.
func (o *Optimizer) Preconditions(p *ir.Program, g *dep.Graph) []Env {
	ctx := o.newContext(p, g)
	var out []Env
	o.matchPattern(ctx, 0, Env{}, func(env Env) bool {
		out = append(out, env.clone())
		return true // continue searching
	})
	return out
}

// PreconditionsPatternOnly finds every binding of the Code_Pattern section
// alone, skipping the Depend clauses: the application points available when
// the user overrides dependence restrictions, as the paper's
// constructor-built interactive interface permits. Elements bound only by
// Depend clauses stay unbound; actions that need them will fail at ApplyAt.
func (o *Optimizer) PreconditionsPatternOnly(p *ir.Program, g *dep.Graph) []Env {
	ctx := o.newContext(p, g)
	ctx.patternOnly = true
	var out []Env
	o.matchPattern(ctx, 0, Env{}, func(env Env) bool {
		out = append(out, env.clone())
		return true // continue searching
	})
	return out
}

// CountPatternOnly counts the Code_Pattern bindings without materializing
// environments — the advisor's per-optimization opportunity census. It is a
// cheap upper bound on the application-point count: Depend clauses are
// skipped, so the search generates no dependence-store traffic and g may be
// a bare &dep.Graph{Prog: p} stub.
func (o *Optimizer) CountPatternOnly(p *ir.Program, g *dep.Graph) int {
	ctx := o.newContext(p, g)
	ctx.patternOnly = true
	n := 0
	o.matchPattern(ctx, 0, Env{}, func(Env) bool {
		n++
		return true
	})
	return n
}

// findFirst returns the first full precondition binding, if any.
func (o *Optimizer) findFirst(ctx *context) (Env, bool) {
	var found Env
	ok := false
	o.matchPattern(ctx, 0, Env{}, func(env Env) bool {
		found = env.clone()
		ok = true
		return false // stop
	})
	return found, ok
}

// matchPattern advances through Code_Pattern clauses, then hands over to the
// Depend clauses; yield is called for each complete binding and returns
// false to stop the search.
func (o *Optimizer) matchPattern(ctx *context, idx int, env Env, yield func(Env) bool) bool {
	if idx >= len(o.Spec.Patterns) {
		if ctx.patternOnly {
			return yield(env)
		}
		if !ctx.timed {
			return o.matchDepend(ctx, 0, env, yield)
		}
		// Tracing: attribute the Depend section's evaluation time to the
		// depend phase, leaving search-minus-depend as the match phase.
		t0 := time.Now()
		r := o.matchDepend(ctx, 0, env, yield)
		ctx.depNS += time.Since(t0).Nanoseconds()
		return r
	}
	pc := o.Spec.Patterns[idx]

	// Skip clauses whose elements were already bound by earlier clauses
	// (shared variables in chained pair declarations).
	allBound := true
	for _, n := range pc.Elems {
		if _, ok := env[n]; !ok {
			allBound = false
			break
		}
	}
	if allBound {
		if pc.Format != nil {
			ctx.inPattern = true
			ok := ctx.evalBool(env, pc.Format)
			ctx.inPattern = false
			if !ok {
				return true
			}
		}
		return o.matchPattern(ctx, idx+1, env, yield)
	}

	candidates := o.patternCandidates(ctx, pc, env)

	if pc.Quant == gospel.QAll {
		// Bind the single element name to the set of all matching
		// statements and continue.
		var set []*ir.Stmt
		for _, cand := range candidates {
			ok := true
			if pc.Format != nil {
				ctx.inPattern = true
				ok = ctx.evalBool(withBindings(env, cand), pc.Format)
				ctx.inPattern = false
			}
			if ok && len(cand) == 1 {
				for _, v := range cand {
					if v.Kind == VStmt {
						set = append(set, v.Stmt)
					}
				}
			}
		}
		env2 := env.clone()
		env2[pc.Elems[0]] = setVal(set)
		return o.matchPattern(ctx, idx+1, env2, yield)
	}

	for _, cand := range candidates {
		env2 := withBindings(env, cand)
		if pc.Format != nil {
			ctx.inPattern = true
			ok := ctx.evalBool(env2, pc.Format)
			ctx.inPattern = false
			if !ok {
				continue
			}
		}
		if !o.matchPattern(ctx, idx+1, env2, yield) {
			return false
		}
	}
	return true
}

func withBindings(env Env, b Env) Env {
	e := env.clone()
	for k, v := range b {
		e[k] = v
	}
	return e
}

// patternCandidates enumerates candidate bindings for a pattern clause's
// elements using the library's finder routines (find_statement,
// find_nested_loops, ...). Bindings already in env constrain pairs.
func (o *Optimizer) patternCandidates(ctx *context, pc gospel.PatternClause, env Env) []Env {
	p := ctx.prog
	if len(pc.Elems) == 1 {
		name := pc.Elems[0]
		kind, _ := o.Spec.DeclKind(name)
		var out []Env
		if kind == gospel.KStmt {
			for _, s := range p.Stmts() {
				out = append(out, Env{name: stmtVal(s)})
			}
		} else {
			for _, l := range ir.Loops(p) {
				out = append(out, Env{name: loopVal(l)})
			}
		}
		return out
	}
	// Pair element: nested / tight / adjacent loops.
	a, b := pc.Elems[0], pc.Elems[1]
	kind, _ := o.Spec.DeclKind(a)
	var pairs [][2]ir.Loop
	switch kind {
	case gospel.KNestedLoops:
		pairs = ir.NestedPairs(p)
	case gospel.KTightLoops:
		pairs = ir.TightPairs(p)
	case gospel.KAdjacentLoops:
		pairs = ir.AdjacentPairs(p)
	}
	var out []Env
	for _, pr := range pairs {
		// Unify with existing bindings (chained pairs share names).
		if v, ok := env[a]; ok && (v.Kind != VLoop || v.Loop.Head != pr[0].Head) {
			continue
		}
		if v, ok := env[b]; ok && (v.Kind != VLoop || v.Loop.Head != pr[1].Head) {
			continue
		}
		out = append(out, Env{a: loopVal(pr[0]), b: loopVal(pr[1])})
	}
	return out
}
