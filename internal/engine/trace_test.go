package engine

import (
	"sync"
	"testing"

	"repro/internal/frontend"
	"repro/internal/obs"
)

// TestTraceGolden runs CTP over a fixed two-statement program with tracing
// on and compares the rendered span tree against a golden. The rendering
// excludes timestamps and durations, so the tree is fully deterministic:
// the engine's search order, counter values and signatures are functions of
// the program alone.
func TestTraceGolden(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 5
y = x + 1
END`)
	tr := obs.NewTracer(obs.Collect())
	o := compile(t, "CTP", ctpSpec, WithTracer(tr))
	apps, err := o.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("applications = %d, want 1", len(apps))
	}
	got := obs.FormatSpans(tr.Roots())
	want := `pass spec=CTP applications=1
  point index=0 sig=2;S1;S2
    match pattern_checks=2
    depend dep_checks=5 scalar_lookups=6 array_lookups=0 control_lookups=0
    action applied=true dep_update=incremental
  search found=false pattern_checks=3 dep_checks=0 scalar_lookups=0 array_lookups=0 control_lookups=0
`
	if got != want {
		t.Errorf("span tree:\n%s\nwant:\n%s", got, want)
	}
}

// TestTracePhasesNamed: every pass/match/depend/action phase the issue's
// span model names appears in a traced run, and the root carries the spec.
func TestTracePhasesNamed(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y, z
x = 5
y = x + x
z = y + x
END`)
	tr := obs.NewTracer(obs.Collect())
	o := compile(t, "CTP", ctpSpec, WithTracer(tr))
	if _, err := o.ApplyAll(p); err != nil {
		t.Fatal(err)
	}
	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	seen := map[string]bool{}
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		seen[s.Name] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(roots[0])
	for _, name := range []string{"pass", "point", "match", "depend", "action", "search"} {
		if !seen[name] {
			t.Errorf("span %q missing from trace", name)
		}
	}
}

// TestTraceDisabledIsInert: an installed-but-disabled tracer records
// nothing and the run still optimizes.
func TestTraceDisabledIsInert(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 5
y = x + 1
END`)
	tr := obs.NewTracer(obs.Disabled(), obs.Collect())
	o := compile(t, "CTP", ctpSpec, WithTracer(tr))
	apps, err := o.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("applications = %d, want 1", len(apps))
	}
	if got := tr.Roots(); len(got) != 0 {
		t.Fatalf("disabled tracer collected %d roots", len(got))
	}
}

// TestTraceParallelSweep: parallel ApplyAll runs over independent programs
// sharing one tracer (the optd model: one tracer per request, several
// passes) must produce intact per-pass trees. Run under -race in CI.
func TestTraceParallelSweep(t *testing.T) {
	tr := obs.NewTracer(obs.Collect())
	var wg sync.WaitGroup
	const n = 8
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 5
y = x + 1
END`)
			o := compile(t, "CTP", ctpSpec, WithTracer(tr))
			_, errs[i] = o.ApplyAll(p)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	roots := tr.Roots()
	if len(roots) != n {
		t.Fatalf("collected %d pass trees, want %d", len(roots), n)
	}
	for _, r := range roots {
		if r.Name != "pass" {
			t.Fatalf("root span %q, want pass", r.Name)
		}
		// Every tree is the complete, uncorrupted run: point + final search.
		if len(r.Children) != 2 {
			t.Fatalf("pass tree has %d children, want 2:\n%s", len(r.Children), r.Format())
		}
	}
}

// TestPassStatsHook: the engine emits one PassStats per ApplyAll with
// non-zero counters for a run that applies and does dependence work.
func TestPassStatsHook(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 5
y = x + 1
END`)
	var got []obs.PassStats
	o := compile(t, "CTP", ctpSpec, WithPassStats(func(ps obs.PassStats) { got = append(got, ps) }))
	if _, err := o.ApplyAll(p); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("PassStats emissions = %d, want 1", len(got))
	}
	ps := got[0]
	if ps.Spec != "CTP" || ps.Applications != 1 {
		t.Errorf("PassStats = %+v", ps)
	}
	if ps.PatternChecks == 0 || ps.DepChecks == 0 || ps.ScalarLookups == 0 {
		t.Errorf("counters not populated: %+v", ps)
	}
	if ps.IncrementalUpdates != 1 {
		t.Errorf("IncrementalUpdates = %d, want 1", ps.IncrementalUpdates)
	}
	if ps.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", ps.Duration)
	}
}
