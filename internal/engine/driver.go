package engine

import (
	stdcontext "context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/dep"
	"repro/internal/obs"
	"repro/ir"
	"repro/optlib"
)

// envSignature renders an application point as a stable string over the
// *set* of bound values (statement IDs, loop head IDs, positions), ignoring
// which element variable holds which value. Using the value set rather than
// the (name, value) map makes self-inverse transformations converge: after
// a loop interchange the re-discovered point binds the same two loops with
// the roles swapped, which is the same application point.
func envSignature(e Env) string {
	parts := make([]string, 0, len(e))
	for _, v := range e {
		switch v.Kind {
		case VStmt:
			if v.Stmt != nil {
				parts = append(parts, fmt.Sprintf("S%d", v.Stmt.ID))
			}
		case VLoop:
			if v.Loop.Head != nil {
				parts = append(parts, fmt.Sprintf("L%d", v.Loop.Head.ID))
			}
		case VNum:
			parts = append(parts, fmt.Sprintf("%d", v.Num))
		case VSet:
			// Render the sorted member IDs: two distinct sets of equal size
			// must not collide, or the second application point is silently
			// skipped as already-seen.
			ids := make([]int, 0, len(v.Set))
			for _, s := range v.Set {
				if s != nil {
					ids = append(ids, s.ID)
				}
			}
			sort.Ints(ids)
			mem := make([]string, len(ids))
			for i, id := range ids {
				mem[i] = fmt.Sprintf("S%d", id)
			}
			parts = append(parts, "set{"+strings.Join(mem, ",")+"}")
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// Application describes one performed application of an optimization.
type Application struct {
	Spec      string
	Signature string
}

// Signature renders an application point's stable identity string — the
// key ApplyAll deduplicates on. Exported for callers (interactive sessions,
// services) that track skipped or applied points across calls.
func Signature(e Env) string { return envSignature(e) }

// ApplyOnce runs the Fig. 5 driver once: search for the first application
// point and apply the actions there. It computes its own dependence graph.
// Returns whether an application was performed.
func (o *Optimizer) ApplyOnce(p *ir.Program) (bool, error) {
	return o.ApplyOnceWith(p, dep.Compute(p))
}

// ApplyOnceWith is ApplyOnce against a caller-provided dependence graph
// (which must describe p's current state).
func (o *Optimizer) ApplyOnceWith(p *ir.Program, g *dep.Graph) (bool, error) {
	ctx := o.newContext(p, g)
	env, ok := o.findFirst(ctx)
	if !ok {
		return false, nil
	}
	if err := o.applyAt(ctx, env); err != nil {
		return false, err
	}
	return true, nil
}

// ApplyAll repeatedly finds and applies application points until none
// remain, maintaining the dependence graph between applications when
// RecomputeDeps is set — incrementally through the change journal by
// default, or from scratch per application with WithoutIncremental. A point
// signature is applied at most once, which terminates otherwise self-inverse
// transformations such as loop interchange. Returns the list of performed
// applications. Hitting MaxApplications while another fresh point remains
// returns the applications performed so far alongside
// optlib.ErrIterationLimit.
func (o *Optimizer) ApplyAll(p *ir.Program) ([]Application, error) {
	return o.ApplyAllCtx(stdcontext.Background(), p)
}

// ApplyAllCtx is ApplyAll under a context: the driver loop checks ctx
// between applications and stops early with ctx.Err() when the context is
// cancelled or its deadline passes, returning the applications already
// performed. The program is left in its partially-optimized (structurally
// valid) state. This is the entry point request-scoped callers (the optd
// service) use to bound optimization time.
func (o *Optimizer) ApplyAllCtx(ctx stdcontext.Context, p *ir.Program) (apps []Application, err error) {
	traced := o.Tracer.Enabled()
	root := o.Tracer.Start("pass", obs.String("spec", o.Spec.Name))
	var done []Application
	seen := map[string]bool{}
	log, owned := p.EnsureLog()
	if owned {
		defer log.Detach()
	}
	g := dep.Compute(p)
	// depAcc accumulates the stats of graphs already replaced by a full
	// recomputation (WithoutIncremental mode), so the pass total is exact.
	var depAcc dep.Stats
	if o.OnPassDone != nil || o.OnPassStats != nil || traced {
		t0 := time.Now()
		costBase := o.cost
		rollbackBase := log.Rollbacks()
		defer func() {
			d := time.Since(t0)
			if err != nil {
				root.Set("error", err.Error())
			}
			root.Set("applications", len(apps))
			root.End()
			if o.OnPassDone != nil {
				o.OnPassDone(o.Spec.Name, len(apps), d)
			}
			if o.OnPassStats != nil {
				c, st := o.cost, depAcc.Add(g.Stats())
				o.OnPassStats(obs.PassStats{
					Spec:               o.Spec.Name,
					Applications:       len(apps),
					Duration:           d,
					PatternChecks:      int64(c.PatternChecks - costBase.PatternChecks),
					DepChecks:          int64(c.DepChecks - costBase.DepChecks),
					ScalarLookups:      st.ScalarLookups,
					ArrayLookups:       st.ArrayLookups,
					ControlLookups:     st.ControlLookups,
					IncrementalUpdates: st.IncrementalUpdates,
					StructuralRebuilds: st.StructuralRebuilds,
					Rollbacks:          log.Rollbacks() - rollbackBase,
				})
			}
		}()
	}
	for {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		ectx := o.newContext(p, g)
		var chosen Env
		found := false
		var searchStart time.Time
		var costPre Cost
		var statsPre dep.Stats
		if traced {
			ectx.timed = true
			searchStart = time.Now()
			costPre = o.cost
			statsPre = g.Stats()
		}
		o.matchPattern(ectx, 0, Env{}, func(env Env) bool {
			sig := envSignature(env)
			if seen[sig] {
				return true // keep searching
			}
			chosen = env.clone()
			found = true
			return false
		})
		var searchDur, depDur time.Duration
		var costPost Cost
		var statsPost dep.Stats
		if traced {
			searchDur = time.Since(searchStart)
			depDur = time.Duration(ectx.depNS)
			costPost = o.cost
			statsPost = g.Stats()
		}
		if !found {
			if traced {
				// The terminating search: the pass reached its fixpoint.
				sp := root.Child("search", obs.Bool("found", false))
				setSearchAttrs(sp, costPost, costPre, statsPost.Sub(statsPre))
				sp.EndWith(searchDur)
			}
			break
		}
		if len(done) >= o.MaxApplications {
			// A fresh point exists beyond the cap: a non-converging rewrite
			// system or a cap set too low for the program.
			return done, optlib.ErrIterationLimit
		}
		sig := envSignature(chosen)
		seen[sig] = true
		var pt, act *obs.Span
		var actStart time.Time
		var rbPre int64
		if traced {
			pt = root.Child("point", obs.Int("index", len(done)), obs.String("sig", sig))
			m := pt.Child("match",
				obs.Int64("pattern_checks", int64(costPost.PatternChecks-costPre.PatternChecks)))
			m.EndWith(searchDur - depDur)
			ds := statsPost.Sub(statsPre)
			dsp := pt.Child("depend",
				obs.Int64("dep_checks", int64(costPost.DepChecks-costPre.DepChecks)),
				obs.Int64("scalar_lookups", ds.ScalarLookups),
				obs.Int64("array_lookups", ds.ArrayLookups),
				obs.Int64("control_lookups", ds.ControlLookups))
			dsp.EndWith(depDur)
			act = pt.Child("action")
			actStart = time.Now()
			rbPre = log.Rollbacks()
		}
		start := log.Mark()
		if aerr := o.applyAt(ectx, chosen); aerr != nil {
			// The actions could not be applied at this point (e.g. an
			// unrepresentable substitution). The undo log rolled the program
			// back in place, preserving statement identity, so the graph is
			// still valid — keep searching with it as-is.
			if traced {
				act.Set("applied", false)
				act.Set("rollbacks", log.Rollbacks()-rbPre)
				act.Set("error", aerr.Error())
				act.EndWith(time.Since(actStart))
				pt.End()
			}
			continue
		}
		act.Set("applied", true)
		done = append(done, Application{Spec: o.Spec.Name, Signature: sig})
		if o.RecomputeDeps {
			if o.IncrementalDeps {
				if g.Update(log.Since(start)) {
					act.Set("dep_update", "incremental")
				} else {
					act.Set("dep_update", "structural")
				}
			} else {
				depAcc = depAcc.Add(g.Stats())
				g = dep.Compute(p)
				act.Set("dep_update", "full")
			}
		} else {
			act.Set("dep_update", "none")
		}
		if traced {
			act.EndWith(time.Since(actStart))
			pt.End()
		}
		if owned {
			// The journal's changes are consumed; keep it from growing
			// across a long fixpoint run. (A caller-attached journal is left
			// intact — its owner decides when to consume it.)
			log.Reset()
		}
	}
	return done, nil
}

// setSearchAttrs annotates a search span with the precondition-check and
// dependence-lookup deltas of one full search.
func setSearchAttrs(sp *obs.Span, post, pre Cost, ds dep.Stats) {
	sp.Set("pattern_checks", int64(post.PatternChecks-pre.PatternChecks))
	sp.Set("dep_checks", int64(post.DepChecks-pre.DepChecks))
	sp.Set("scalar_lookups", ds.ScalarLookups)
	sp.Set("array_lookups", ds.ArrayLookups)
	sp.Set("control_lookups", ds.ControlLookups)
}

// ApplyAt applies the optimizer's actions at a specific, already-found
// application point (the paper's "perform an optimization at one
// application point", possibly overriding dependence restrictions — the
// caller may pass any binding, checked or not).
func (o *Optimizer) ApplyAt(p *ir.Program, g *dep.Graph, env Env) error {
	ctx := o.newContext(p, g)
	return o.applyAt(ctx, env)
}

// applyAt executes the action section under env with rollback on failure.
// Instead of snapshotting the whole program (the seed's Clone/CopyFrom,
// O(n) per attempt), it journals the executed primitives and replays them
// backwards on failure — O(|edits|) — leaving every untouched statement
// pointer-identical so the caller's dependence graph stays valid.
func (o *Optimizer) applyAt(ctx *context, env Env) error {
	log, owned := ctx.prog.EnsureLog()
	if owned {
		defer log.Detach()
	}
	mark := log.Mark()
	if err := o.execActions(ctx, env.clone(), o.Spec.Actions); err != nil {
		log.UndoTo(mark)
		return err
	}
	if err := ctx.prog.Validate(); err != nil {
		log.UndoTo(mark)
		return fmt.Errorf("engine: %s actions broke program structure: %w", o.Spec.Name, err)
	}
	return nil
}
