package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/dep"
	"repro/ir"
)

// envSignature renders an application point as a stable string over the
// *set* of bound values (statement IDs, loop head IDs, positions), ignoring
// which element variable holds which value. Using the value set rather than
// the (name, value) map makes self-inverse transformations converge: after
// a loop interchange the re-discovered point binds the same two loops with
// the roles swapped, which is the same application point.
func envSignature(e Env) string {
	parts := make([]string, 0, len(e))
	for _, v := range e {
		switch v.Kind {
		case VStmt:
			if v.Stmt != nil {
				parts = append(parts, fmt.Sprintf("S%d", v.Stmt.ID))
			}
		case VLoop:
			if v.Loop.Head != nil {
				parts = append(parts, fmt.Sprintf("L%d", v.Loop.Head.ID))
			}
		case VNum:
			parts = append(parts, fmt.Sprintf("%d", v.Num))
		case VSet:
			parts = append(parts, fmt.Sprintf("set%d", len(v.Set)))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// Application describes one performed application of an optimization.
type Application struct {
	Spec      string
	Signature string
}

// ApplyOnce runs the Fig. 5 driver once: search for the first application
// point and apply the actions there. It computes its own dependence graph.
// Returns whether an application was performed.
func (o *Optimizer) ApplyOnce(p *ir.Program) (bool, error) {
	return o.ApplyOnceWith(p, dep.Compute(p))
}

// ApplyOnceWith is ApplyOnce against a caller-provided dependence graph
// (which must describe p's current state).
func (o *Optimizer) ApplyOnceWith(p *ir.Program, g *dep.Graph) (bool, error) {
	ctx := o.newContext(p, g)
	env, ok := o.findFirst(ctx)
	if !ok {
		return false, nil
	}
	if err := o.applyAt(ctx, env); err != nil {
		return false, err
	}
	return true, nil
}

// ApplyAll repeatedly finds and applies application points until none
// remain, recomputing dependences between applications when RecomputeDeps
// is set. A point signature is applied at most once, which terminates
// otherwise self-inverse transformations such as loop interchange. Returns
// the list of performed applications.
func (o *Optimizer) ApplyAll(p *ir.Program) ([]Application, error) {
	var done []Application
	seen := map[string]bool{}
	g := dep.Compute(p)
	for len(done) < o.MaxApplications {
		ctx := o.newContext(p, g)
		var chosen Env
		found := false
		o.matchPattern(ctx, 0, Env{}, func(env Env) bool {
			sig := envSignature(env)
			if seen[sig] {
				return true // keep searching
			}
			chosen = env.clone()
			found = true
			return false
		})
		if !found {
			break
		}
		sig := envSignature(chosen)
		seen[sig] = true
		if err := o.applyAt(ctx, chosen); err != nil {
			// The actions could not be applied at this point (e.g. an
			// unrepresentable substitution). The rollback replaced every
			// statement, so both the dependence graph and any outstanding
			// bindings are stale: recompute before searching again.
			g = dep.Compute(p)
			continue
		}
		done = append(done, Application{Spec: o.Spec.Name, Signature: sig})
		if o.RecomputeDeps {
			g = dep.Compute(p)
		}
	}
	return done, nil
}

// ApplyAt applies the optimizer's actions at a specific, already-found
// application point (the paper's "perform an optimization at one
// application point", possibly overriding dependence restrictions — the
// caller may pass any binding, checked or not).
func (o *Optimizer) ApplyAt(p *ir.Program, g *dep.Graph, env Env) error {
	ctx := o.newContext(p, g)
	return o.applyAt(ctx, env)
}

// applyAt executes the action section under env with rollback on failure.
func (o *Optimizer) applyAt(ctx *context, env Env) error {
	snapshot := ctx.prog.Clone()
	if err := o.execActions(ctx, env.clone(), o.Spec.Actions); err != nil {
		ctx.prog.CopyFrom(snapshot)
		return err
	}
	if err := ctx.prog.Validate(); err != nil {
		ctx.prog.CopyFrom(snapshot)
		return fmt.Errorf("engine: %s actions broke program structure: %w", o.Spec.Name, err)
	}
	return nil
}
