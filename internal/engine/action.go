package engine

import (
	"repro/internal/gospel"
	"repro/ir"
)

// execActions runs an action list under env. The five primitives mutate the
// program through the ir package's structural operations; each executed
// primitive counts one ActionOp (the paper's "operations to apply the code
// transformation").
func (o *Optimizer) execActions(ctx *context, env Env, actions []gospel.Action) error {
	for _, a := range actions {
		if err := o.execAction(ctx, env, a); err != nil {
			return err
		}
	}
	return nil
}

func (o *Optimizer) execAction(ctx *context, env Env, a gospel.Action) error {
	switch a := a.(type) {
	case gospel.DeleteAction:
		sv, err := ctx.eval(env, a.Target)
		if err != nil {
			return err
		}
		if sv.Kind != VStmt || sv.Stmt == nil || ctx.prog.Index(sv.Stmt) < 0 {
			return errf("delete: target is not a live statement")
		}
		ctx.prog.Delete(sv.Stmt)
		ctx.cost.ActionOps++
		return nil

	case gospel.MoveAction:
		sv, err := ctx.eval(env, a.Src)
		if err != nil {
			return err
		}
		av, err := ctx.eval(env, a.After)
		if err != nil {
			// A nil anchor (e.g. L1.head.prev at the top of the program)
			// means "move to the front".
			av = stmtVal(nil)
		}
		if sv.Kind != VStmt || sv.Stmt == nil {
			return errf("move: source is not a statement")
		}
		if av.Kind != VStmt {
			return errf("move: anchor is not a statement")
		}
		ctx.prog.Move(sv.Stmt, av.Stmt)
		ctx.cost.ActionOps++
		return nil

	case gospel.CopyAction:
		sv, err := ctx.eval(env, a.Src)
		if err != nil {
			return err
		}
		av, err := ctx.eval(env, a.After)
		if err != nil {
			return err
		}
		if sv.Kind != VStmt || sv.Stmt == nil || av.Kind != VStmt || av.Stmt == nil {
			return errf("copy: needs statement source and anchor")
		}
		clone := ctx.prog.Copy(sv.Stmt, av.Stmt)
		env[a.Name] = stmtVal(clone)
		ctx.cost.ActionOps++
		return nil

	case gospel.AddAction:
		av, err := ctx.eval(env, a.After)
		if err != nil {
			return err
		}
		dv, err := ctx.eval(env, a.Desc)
		if err != nil {
			return err
		}
		if av.Kind != VStmt || av.Stmt == nil {
			return errf("add: anchor is not a statement")
		}
		if dv.Kind != VStmt || dv.Stmt == nil {
			return errf("add: element description must evaluate to a statement template")
		}
		clone := ctx.prog.InsertAfter(av.Stmt, ir.CloneStmt(dv.Stmt))
		env[a.Name] = stmtVal(clone)
		ctx.cost.ActionOps++
		return nil

	case gospel.ModifyAction:
		return o.execModify(ctx, env, a)

	case gospel.ForallAction:
		set, err := ctx.evalSet(env, a.Set)
		if err != nil {
			return err
		}
		// Snapshot: iterate the membership as of entry, skipping statements
		// removed by earlier iterations.
		snapshot := append([]*ir.Stmt{}, set...)
		for _, s := range snapshot {
			if ctx.prog.Index(s) < 0 {
				continue
			}
			env[a.Var] = stmtVal(s)
			if err := o.execActions(ctx, env, a.Body); err != nil {
				delete(env, a.Var)
				return err
			}
		}
		delete(env, a.Var)
		return nil
	}
	return errf("unknown action")
}

// execModify implements the overloaded Modify primitive:
//
//   - operand slot ← operand value (the paper's Modify(Operand(S,i), new));
//   - opcode ← opcode literal (folding CFO sets opc to assign, PAR marks a
//     loop doall);
//   - whole statement ← subst(v, expr): rewrite occurrences of v.
func (o *Optimizer) execModify(ctx *context, env Env, a gospel.ModifyAction) error {
	val, err := ctx.eval(env, a.Value)
	if err != nil {
		return err
	}

	// Whole-statement substitution.
	if val.Kind == VSubst {
		sv, err := ctx.eval(env, a.Target)
		if err != nil {
			return err
		}
		if sv.Kind != VStmt || sv.Stmt == nil {
			return errf("modify: subst target must be a statement")
		}
		ctx.cost.ActionOps++
		// Journal the pre-image first: substStmt can mutate partially before
		// discovering an unrepresentable occurrence and erroring out.
		ctx.prog.NoteModified(sv.Stmt)
		return substStmt(sv.Stmt, val.Subst)
	}

	stmt, slot, field, err := o.resolveLvalue(ctx, env, a.Target)
	if err != nil {
		return err
	}
	ctx.cost.ActionOps++
	switch field {
	case "operand":
		op := stmt.OperandSlot(slot)
		if op == nil {
			return errf("modify: statement S%d has no operand %d", stmt.ID, slot)
		}
		ctx.prog.NoteModified(stmt)
		switch val.Kind {
		case VOperand:
			*op = val.Op.Clone()
		case VNum:
			*op = ir.IntOp(val.Num)
		default:
			return errf("modify: %s is not an operand value", val)
		}
		return nil
	case "opc":
		if val.Kind != VLit {
			return errf("modify: opcode value must be a literal")
		}
		ctx.prog.NoteModified(stmt)
		return setOpc(stmt, val.Lit)
	}
	return errf("modify: unsupported target")
}

// resolveLvalue resolves a modify target to (statement, operand slot) or
// (statement, "opc").
func (o *Optimizer) resolveLvalue(ctx *context, env Env, target gospel.Expr) (*ir.Stmt, int, string, error) {
	switch t := target.(type) {
	case gospel.Call:
		if t.Fn != "operand" || len(t.Args) != 2 {
			return nil, 0, "", errf("modify: target call must be operand(S, pos)")
		}
		sv, err := ctx.eval(env, t.Args[0])
		if err != nil {
			return nil, 0, "", err
		}
		pv, err := ctx.eval(env, t.Args[1])
		if err != nil {
			return nil, 0, "", err
		}
		if sv.Kind != VStmt || sv.Stmt == nil {
			return nil, 0, "", errf("modify: operand() needs a statement")
		}
		n, err := numeric(pv)
		if err != nil {
			return nil, 0, "", err
		}
		return sv.Stmt, int(n), "operand", nil
	case gospel.Attr:
		base, err := ctx.eval(env, t.Base)
		if err != nil {
			return nil, 0, "", err
		}
		var stmt *ir.Stmt
		switch base.Kind {
		case VStmt:
			stmt = base.Stmt
		case VLoop:
			if !base.Loop.Valid(ctx.prog) {
				return nil, 0, "", errf("modify: stale loop binding")
			}
			stmt = base.Loop.Head
		default:
			return nil, 0, "", errf("modify: target base must be a statement or loop")
		}
		if stmt == nil {
			return nil, 0, "", errf("modify: absent statement")
		}
		switch t.Name {
		case "opr_1":
			return stmt, 1, "operand", nil
		case "opr_2":
			return stmt, 2, "operand", nil
		case "opr_3":
			return stmt, 3, "operand", nil
		case "init":
			return stmt, 1, "operand", nil
		case "final":
			return stmt, 2, "operand", nil
		case "step":
			return stmt, 3, "operand", nil
		case "opc", "kind":
			return stmt, 0, "opc", nil
		}
		return nil, 0, "", errf("modify: cannot assign attribute %q", t.Name)
	}
	return nil, 0, "", errf("modify: unsupported target form")
}

// setOpc assigns a new opcode or statement kind.
func setOpc(s *ir.Stmt, lit string) error {
	switch lit {
	case "assign":
		if s.Kind != ir.SAssign {
			return errf("modify: %s is not an assignment", kindName(s))
		}
		s.Op = ir.OpCopy
		s.B = ir.None() // a copy has no third operand
		return nil
	case "add", "sub", "mul", "div", "mod":
		if s.Kind != ir.SAssign {
			return errf("modify: %s is not an assignment", kindName(s))
		}
		switch lit {
		case "add":
			s.Op = ir.OpAdd
		case "sub":
			s.Op = ir.OpSub
		case "mul":
			s.Op = ir.OpMul
		case "div":
			s.Op = ir.OpDiv
		case "mod":
			s.Op = ir.OpMod
		}
		return nil
	case "doall":
		if s.Kind != ir.SDoHead {
			return errf("modify: doall applies to loop headers")
		}
		s.Parallel = true
		return nil
	case "do":
		if s.Kind != ir.SDoHead {
			return errf("modify: do applies to loop headers")
		}
		s.Parallel = false
		return nil
	}
	return errf("modify: unknown opcode literal %q", lit)
}

// substStmt rewrites occurrences of sub.Var in every operand of s:
// subscript expressions substitute affinely; a direct scalar operand equal
// to the variable is replaced when the replacement is itself a variable or
// constant, or — for the sole right-hand operand of a copy — expanded into
// the equivalent add/sub. Anything else is unrepresentable in a quad and
// aborts the application.
func substStmt(s *ir.Stmt, sub *SubstVal) error {
	repl := sub.Repl.Normalize()

	// Replacement operand for direct occurrences, when expressible.
	var direct *ir.Operand
	switch {
	case repl.IsConst():
		op := ir.IntOp(repl.Const)
		direct = &op
	case len(repl.Terms) == 1 && repl.Terms[0].Coef == 1 && repl.Const == 0:
		op := ir.VarOp(repl.Terms[0].Var)
		direct = &op
	}

	substOperand := func(op *ir.Operand) error {
		switch op.Kind {
		case ir.ArrayRef:
			*op = op.SubstVar(sub.Var, repl)
			return nil
		case ir.Var:
			if op.Name != sub.Var {
				return nil
			}
			if direct != nil {
				*op = direct.Clone()
				return nil
			}
			return errf("subst: %s := %s not expressible in this operand", sub.Var, repl)
		}
		return nil
	}

	// Special case first: "x := i" (copy whose only source is the variable)
	// can absorb an affine replacement i+c as "x := i + c".
	if s.Kind == ir.SAssign && s.Op == ir.OpCopy && s.A.IsVar() && s.A.Name == sub.Var && direct == nil {
		if len(repl.Terms) == 1 && repl.Terms[0].Coef == 1 {
			s.Op = ir.OpAdd
			s.A = ir.VarOp(repl.Terms[0].Var)
			s.B = ir.IntOp(repl.Const)
			// Destination subscripts may still mention the variable.
			if s.Dst.IsArray() {
				s.Dst = s.Dst.SubstVar(sub.Var, repl)
			}
			return nil
		}
	}

	if s.Dst.Present() {
		if err := substOperand(&s.Dst); err != nil {
			return err
		}
	}
	if err := substOperand(&s.A); err != nil {
		return err
	}
	if err := substOperand(&s.B); err != nil {
		return err
	}
	if err := substOperand(&s.Init); err != nil {
		return err
	}
	if err := substOperand(&s.Final); err != nil {
		return err
	}
	if err := substOperand(&s.Step); err != nil {
		return err
	}
	for i := range s.Args {
		if err := substOperand(&s.Args[i]); err != nil {
			return err
		}
	}
	return nil
}
