// Package engine is the GENesis core: it compiles a checked GOSpeL
// specification into an executable optimizer and provides the driver of the
// paper's Figure 5. An optimizer runs in four phases exactly as the
// generated code of the paper does — set_up (element table), match (code
// pattern search), pre (dependence verification) and act (transformation
// primitives) — backed by the optimization-independent library: element
// finders, the dependence query routine (Fig. 7), and the five primitive
// actions.
package engine

import (
	"fmt"

	"repro/ir"
)

// VKind tags the runtime values GOSpeL expressions evaluate to.
type VKind int

const (
	VNone VKind = iota
	VStmt
	VLoop
	VSet
	VOperand
	VNum
	VBool
	VLit   // opcode / statement-kind / operand-type literal
	VSubst // subst(...) descriptor, consumed by modify
)

// Value is one GOSpeL runtime value.
type Value struct {
	Kind  VKind
	Stmt  *ir.Stmt
	Loop  ir.Loop
	Set   []*ir.Stmt
	Op    ir.Operand
	Num   int64
	Bool  bool
	Lit   string
	Subst *SubstVal
}

// SubstVal describes a variable substitution v ← Repl applied to a
// statement by modify(S, subst(v, expr)).
type SubstVal struct {
	Var  string
	Repl ir.LinExpr
}

func stmtVal(s *ir.Stmt) Value   { return Value{Kind: VStmt, Stmt: s} }
func loopVal(l ir.Loop) Value    { return Value{Kind: VLoop, Loop: l} }
func setVal(s []*ir.Stmt) Value  { return Value{Kind: VSet, Set: s} }
func opVal(o ir.Operand) Value   { return Value{Kind: VOperand, Op: o} }
func numVal(n int64) Value       { return Value{Kind: VNum, Num: n} }
func boolVal(b bool) Value       { return Value{Kind: VBool, Bool: b} }
func litVal(s string) Value      { return Value{Kind: VLit, Lit: s} }
func substVal(s *SubstVal) Value { return Value{Kind: VSubst, Subst: s} }

func (v Value) String() string {
	switch v.Kind {
	case VStmt:
		if v.Stmt == nil {
			return "<nil stmt>"
		}
		return fmt.Sprintf("S%d", v.Stmt.ID)
	case VLoop:
		return fmt.Sprintf("loop(%s)", v.Loop.LCV())
	case VSet:
		return fmt.Sprintf("set[%d]", len(v.Set))
	case VOperand:
		return v.Op.String()
	case VNum:
		return fmt.Sprintf("%d", v.Num)
	case VBool:
		return fmt.Sprintf("%t", v.Bool)
	case VLit:
		return v.Lit
	case VSubst:
		return fmt.Sprintf("subst(%s, %s)", v.Subst.Var, v.Subst.Repl)
	}
	return "<none>"
}

// Env is the binding environment of one match attempt: element variables,
// position variables and action-bound names.
type Env map[string]Value

// clone returns a shallow copy (values are immutable once bound).
func (e Env) clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Cost tallies the work an optimizer performs, in the units the paper uses
// for its cost experiments: the number of checks needed to determine
// preconditions and the number of operations used to apply the
// transformation (Section 4).
type Cost struct {
	PatternChecks int // code-pattern format predicate evaluations
	DepChecks     int // dependence condition evaluations
	MemChecks     int // set-membership evaluations
	ActionOps     int // primitive transformation operations executed
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.PatternChecks += o.PatternChecks
	c.DepChecks += o.DepChecks
	c.MemChecks += o.MemChecks
	c.ActionOps += o.ActionOps
}

// Checks returns the total precondition checks.
func (c Cost) Checks() int { return c.PatternChecks + c.DepChecks + c.MemChecks }

// Total returns checks plus transformation operations.
func (c Cost) Total() int { return c.Checks() + c.ActionOps }

func (c Cost) String() string {
	return fmt.Sprintf("pattern=%d dep=%d mem=%d actions=%d",
		c.PatternChecks, c.DepChecks, c.MemChecks, c.ActionOps)
}

// Strategy selects how membership-qualified dependence clauses are
// evaluated — the two implementations compared in the paper's Section 4
// plus the heuristic choice GENesis was changed to make.
type Strategy int

const (
	// StrategyHeuristic estimates both enumeration orders and picks the
	// cheaper one per clause (the paper's final design).
	StrategyHeuristic Strategy = iota
	// StrategyMembers enumerates the members of the qualifying sets first,
	// then checks the dependence conditions (implementation 1).
	StrategyMembers
	// StrategyDeps enumerates dependences of the required kind first, then
	// checks set membership (implementation 2).
	StrategyDeps
)

func (s Strategy) String() string {
	switch s {
	case StrategyHeuristic:
		return "heuristic"
	case StrategyMembers:
		return "members-first"
	case StrategyDeps:
		return "deps-first"
	}
	return "?"
}
