package engine

import (
	"strings"
	"testing"

	"repro/dep"
	"repro/internal/frontend"
	"repro/internal/gospel"
	"repro/ir"
)

// evalCtx builds a context over a program for direct expression tests.
func evalCtx(t *testing.T, src string) (*context, *ir.Program) {
	t.Helper()
	p := frontend.MustParse(src)
	o := &Optimizer{Spec: &gospel.Spec{Name: "T"}}
	return o.newContext(p, dep.Compute(p)), p
}

func parseExpr(t *testing.T, src string) gospel.Expr {
	t.Helper()
	// Wrap the expression in a minimal spec and pull the format back out.
	spec, err := gospel.Parse("TYPE Stmt: S0; PRECOND Code_Pattern any S0: " + src + "; ACTION delete(S0);")
	if err != nil {
		t.Fatalf("%q: %v", src, err)
	}
	return spec.Patterns[0].Format
}

func TestEvalAttributes(t *testing.T) {
	ctx, p := evalCtx(t, `
PROGRAM p
INTEGER i, x
REAL a(10)
x = 1
DO i = 1, 10, 2
  a(i) = x * 2
ENDDO
PRINT x
END`)
	loops := ir.Loops(p)
	env := Env{"L": loopVal(loops[0]), "S": stmtVal(p.At(0))}

	cases := []struct {
		expr string
		want string
	}{
		{"L.lcv", "i"},
		{"L.init", "1"},
		{"L.final", "10"},
		{"L.step", "2"},
		{"S.opr_1", "x"},
		{"S.opr_2", "1"},
		{"S.opc", "assign"},
		{"S.kind", "assign"},
	}
	for _, c := range cases {
		v, err := ctx.eval(env, parseExpr(t, c.expr+" == "+c.expr).(gospel.Binary).L)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if v.String() != c.want {
			t.Errorf("%s = %s, want %s", c.expr, v, c.want)
		}
	}

	// next/prev navigation.
	next, err := ctx.eval(env, parseExpr(t, "S.next == S.next").(gospel.Binary).L)
	if err != nil || next.Stmt != p.At(1) {
		t.Errorf("S.next = %v, %v", next, err)
	}
	if _, err := ctx.eval(env, parseExpr(t, "S.prev == S.prev").(gospel.Binary).L); err != nil {
		// S is the first statement: prev is nil but not an error.
		t.Errorf("S.prev: %v", err)
	}
	// head/end of the loop.
	head, err := ctx.eval(env, parseExpr(t, "L.head == L.head").(gospel.Binary).L)
	if err != nil || head.Stmt != loops[0].Head {
		t.Errorf("L.head = %v, %v", head, err)
	}
	// Unknown attribute errors.
	if _, err := ctx.eval(env, gospel.Attr{Base: gospel.Ident{Name: "S"}, Name: "zzz"}); err == nil {
		t.Error("unknown statement attribute must error")
	}
	if _, err := ctx.eval(env, gospel.Attr{Base: gospel.Ident{Name: "L"}, Name: "zzz"}); err == nil {
		t.Error("unknown loop attribute must error")
	}
}

func TestEvalLoopNeighbour(t *testing.T) {
	ctx, p := evalCtx(t, `
PROGRAM p
INTEGER i
REAL a(10)
DO i = 1, 5
  a(i) = 1.0
ENDDO
DO i = 1, 5
  a(i) = 2.0
ENDDO
END`)
	loops := ir.Loops(p)
	env := Env{"L1": loopVal(loops[0]), "L2": loopVal(loops[1])}
	v, err := ctx.eval(env, gospel.Attr{Base: gospel.Ident{Name: "L1"}, Name: "next"})
	if err != nil || v.Kind != VLoop || v.Loop.Head != loops[1].Head {
		t.Errorf("L1.next = %v, %v", v, err)
	}
	v, err = ctx.eval(env, gospel.Attr{Base: gospel.Ident{Name: "L2"}, Name: "prev"})
	if err != nil || v.Loop.Head != loops[0].Head {
		t.Errorf("L2.prev = %v, %v", v, err)
	}
	if _, err := ctx.eval(env, gospel.Attr{Base: gospel.Ident{Name: "L1"}, Name: "prev"}); err == nil {
		t.Error("no previous loop: must error")
	}
	if _, err := ctx.eval(env, gospel.Attr{Base: gospel.Ident{Name: "L2"}, Name: "next"}); err == nil {
		t.Error("no next loop: must error")
	}
}

func TestCompareValuesBranches(t *testing.T) {
	ctx, p := evalCtx(t, "PROGRAM p\nINTEGER x\nx = 1\nx = 2\nEND")
	a, b := p.At(0), p.At(1)

	ok, err := ctx.compareValues("<", stmtVal(a), stmtVal(b))
	if err != nil || !ok {
		t.Errorf("program-order <: %v %v", ok, err)
	}
	ok, err = ctx.compareValues(">=", stmtVal(b), stmtVal(a))
	if err != nil || !ok {
		t.Errorf("program-order >=: %v %v", ok, err)
	}
	if _, err := ctx.compareValues("<", stmtVal(&ir.Stmt{}), stmtVal(a)); err == nil {
		t.Error("order comparison of foreign statement must error")
	}
	// Literal comparisons.
	ok, _ = ctx.compareValues("==", litVal("add"), litVal("add"))
	if !ok {
		t.Error("literal equality")
	}
	if _, err := ctx.compareValues("<", litVal("add"), litVal("mul")); err == nil {
		t.Error("literal relational must error")
	}
	if _, err := ctx.compareValues("==", litVal("add"), numVal(3)); err == nil {
		t.Error("literal vs number must error")
	}
	// Operand structural comparison.
	ok, _ = ctx.compareValues("!=", opVal(ir.VarOp("x")), opVal(ir.VarOp("y")))
	if !ok {
		t.Error("operand inequality")
	}
	// Numeric comparisons through operands.
	ok, _ = ctx.compareValues("<=", opVal(ir.IntOp(3)), numVal(3))
	if !ok {
		t.Error("const operand vs num")
	}
	if _, err := ctx.compareValues("<", opVal(ir.VarOp("x")), numVal(3)); err == nil {
		t.Error("non-const operand relational must error")
	}
}

func TestPathSetThroughEval(t *testing.T) {
	ctx, p := evalCtx(t, `
PROGRAM p
INTEGER x, y, z
x = 1
y = 2
z = 3
END`)
	env := Env{"A": stmtVal(p.At(0)), "B": stmtVal(p.At(2))}
	spec, err := gospel.Parse(`
TYPE Stmt: A, B, M;
PRECOND Code_Pattern any A; any B;
Depend any M: mem(M, path(A, B));
ACTION delete(M);`)
	if err != nil {
		t.Fatal(err)
	}
	cond := spec.Depends[0].Sets
	env["M"] = stmtVal(p.At(1))
	v, err := ctx.eval(env, cond)
	if err != nil || !v.Bool {
		t.Errorf("middle statement must be on the path: %v %v", v, err)
	}
	env["M"] = stmtVal(p.At(0))
	v, _ = ctx.eval(env, cond)
	if v.Bool {
		t.Error("endpoints are excluded from path()")
	}
}

func TestSetOperations(t *testing.T) {
	ctx, p := evalCtx(t, `
PROGRAM p
INTEGER i
REAL a(10)
DO i = 1, 5
  a(i) = 1.0
ENDDO
DO i = 1, 5
  a(i) = 2.0
ENDDO
END`)
	loops := ir.Loops(p)
	env := Env{"L1": loopVal(loops[0]), "L2": loopVal(loops[1]), "S": stmtVal(loops[0].Body(p)[0])}
	spec, err := gospel.Parse(`
TYPE Stmt: S; Loop: L1, L2;
PRECOND Code_Pattern any L1; any L2; any S;
Depend
  any S: mem(S, union(L1.body, L2.body)) AND nmem(S, inter(L1.body, L2.body));
ACTION delete(S);`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ctx.eval(env, spec.Depends[0].Sets)
	if err != nil || !v.Bool {
		t.Errorf("union/inter/nmem: %v %v", v, err)
	}
}

func TestValueAndCostStrings(t *testing.T) {
	vals := []Value{
		stmtVal(&ir.Stmt{ID: 3}),
		stmtVal(nil),
		loopVal(ir.Loop{Head: &ir.Stmt{Kind: ir.SDoHead, LCV: "i"}}),
		setVal([]*ir.Stmt{nil, nil}),
		opVal(ir.VarOp("x")),
		numVal(7),
		boolVal(true),
		litVal("add"),
		substVal(&SubstVal{Var: "i", Repl: ir.VarExpr("i")}),
		{},
	}
	for _, v := range vals {
		if v.String() == "" {
			t.Errorf("empty String for %#v", v)
		}
	}
	c := Cost{PatternChecks: 1, DepChecks: 2, MemChecks: 3, ActionOps: 4}
	var sum Cost
	sum.Add(c)
	sum.Add(c)
	if sum.Checks() != 12 || sum.Total() != 20 {
		t.Errorf("cost arithmetic: %+v", sum)
	}
	if !strings.Contains(c.String(), "pattern=1") {
		t.Error("Cost.String")
	}
	for _, s := range []Strategy{StrategyHeuristic, StrategyMembers, StrategyDeps, Strategy(99)} {
		if s.String() == "" {
			t.Error("Strategy.String")
		}
	}
}

func TestOptimizerNameAndOptions(t *testing.T) {
	spec, err := gospel.ParseAndCheck("X", `
TYPE Stmt: S;
PRECOND Code_Pattern any S: S.opc == assign;
Depend
ACTION modify(S.opr_2, 1);`)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Compile(spec, WithoutRecompute(), WithStrategy(StrategyDeps))
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "X" {
		t.Error("Name")
	}
	if o.RecomputeDeps {
		t.Error("WithoutRecompute not applied")
	}
	if o.Strategy != StrategyDeps {
		t.Error("WithStrategy not applied")
	}
}

func TestSetOpcVariants(t *testing.T) {
	s := &ir.Stmt{Kind: ir.SAssign, Dst: ir.VarOp("x"), Op: ir.OpAdd, A: ir.IntOp(1), B: ir.IntOp(2)}
	for _, lit := range []string{"add", "sub", "mul", "div", "mod", "assign"} {
		if err := setOpc(s, lit); err != nil {
			t.Errorf("%s: %v", lit, err)
		}
	}
	if err := setOpc(s, "doall"); err == nil {
		t.Error("doall on assignment must fail")
	}
	do := &ir.Stmt{Kind: ir.SDoHead}
	if err := setOpc(do, "assign"); err == nil {
		t.Error("assign on loop header must fail")
	}
	if err := setOpc(do, "doall"); err != nil || !do.Parallel {
		t.Error("doall flag")
	}
	if err := setOpc(do, "do"); err != nil || do.Parallel {
		t.Error("do flag")
	}
	if err := setOpc(do, "nonsense"); err == nil {
		t.Error("unknown literal must fail")
	}
}

func TestEvalEvalForms(t *testing.T) {
	ctx, p := evalCtx(t, "PROGRAM p\nINTEGER x\nx = 3 * 4\nx = x\nEND")
	fold, err := ctx.evalEval(Env{"S": stmtVal(p.At(0))}, gospel.Ident{Name: "S"})
	if err != nil || fold.Op.Val.AsInt() != 12 {
		t.Errorf("eval(S) = %v, %v", fold, err)
	}
	if _, err := ctx.evalEval(Env{"S": stmtVal(p.At(1))}, gospel.Ident{Name: "S"}); err == nil {
		t.Error("eval of a copy must fail")
	}
	v, err := ctx.evalEval(Env{}, gospel.Num{Text: "5"})
	if err != nil || v.Op.Val.AsInt() != 5 {
		t.Errorf("eval(5) = %v, %v", v, err)
	}
}

func TestApplyOnceNoMatchReturnsFalse(t *testing.T) {
	spec, err := gospel.ParseAndCheck("NOPE", `
TYPE Stmt: S;
PRECOND Code_Pattern any S: S.kind == read;
Depend
ACTION delete(S);`)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := frontend.MustParse("PROGRAM p\nINTEGER x\nx = 1\nEND")
	applied, err := o.ApplyOnce(p)
	if err != nil || applied {
		t.Errorf("no READ statements: %v %v", applied, err)
	}
}
