package engine_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/farm"
	"repro/internal/frontend"
	"repro/internal/specs"
	"repro/ir"
)

// regionPipeline mixes region-eligible passes (CTP, CFO, DCE, PAR) with
// whole-program ones (FUS), so a differential run exercises both the
// per-region fixpoint and the sharded-search fallback.
var regionPipeline = []string{"CTP", "CFO", "DCE", "FUS", "PAR"}

// runSeq applies the pipeline with the plain sequential driver.
func runSeq(t *testing.T, template *ir.Program, pipeline []string) string {
	t.Helper()
	p := template.Clone()
	for _, name := range pipeline {
		if _, err := specs.MustCompile(name).ApplyAll(p); err != nil {
			t.Fatalf("sequential %s: %v", name, err)
		}
	}
	return p.String()
}

// runRegions applies the pipeline through ApplyAllRegions at the given
// worker count.
func runRegions(t *testing.T, template *ir.Program, pipeline []string, workers int) string {
	t.Helper()
	p := template.Clone()
	for _, name := range pipeline {
		if _, _, err := specs.MustCompile(name).ApplyAllRegions(context.Background(), p, workers); err != nil {
			t.Fatalf("workers=%d %s: %v", workers, name, err)
		}
	}
	return p.String()
}

// diffWorkers checks the region path is byte-identical to the sequential
// driver at every worker count.
func diffWorkers(t *testing.T, template *ir.Program, pipeline []string) {
	t.Helper()
	want := runSeq(t, template, pipeline)
	for _, w := range []int{1, 2, 8} {
		if got := runRegions(t, template, pipeline, w); got != want {
			t.Errorf("workers=%d diverges from sequential\n--- sequential ---\n%s--- workers=%d ---\n%s",
				w, want, w, got)
		}
	}
}

// TestRegionParallelMatchesSequentialExamples runs the mixed pipeline over
// every example program and requires byte-identical output at workers
// 1, 2 and 8. Large examples are skipped in -short mode so the race lane
// (-race -count=3) stays fast.
func TestRegionParallelMatchesSequentialExamples(t *testing.T) {
	t.Parallel()
	dir := filepath.Join("..", "..", "examples", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".mf") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := frontend.Parse(string(raw))
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			if testing.Short() && p.Len() > 60 {
				t.Skipf("%d statements, skipped in -short", p.Len())
			}
			diffWorkers(t, p, regionPipeline)
		})
	}
}

// TestRegionParallelMatchesSequentialFarmCorpus runs the differential over
// the farm's aggregation corpus, whose programs are built to trigger the
// order-sensitive aggregation specs — all region-INELIGIBLE, so this
// exercises the sharded-search path plus the partition/fallback plumbing.
func TestRegionParallelMatchesSequentialFarmCorpus(t *testing.T) {
	t.Parallel()
	pipeline := []string{"CTP", "DCE", "AGG", "AGS"}
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src, err := farm.SourceFor("aggregation", seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := frontend.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		diffWorkers(t, p, pipeline)
	}
}

// TestRegionParallelRepeatedRunsStable re-runs one parallel configuration
// several times: scheduling must never leak into the output.
func TestRegionParallelRepeatedRunsStable(t *testing.T) {
	t.Parallel()
	src, err := farm.SourceFor("mixed", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := frontend.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := runRegions(t, p, regionPipeline, 8)
	for i := 0; i < 4; i++ {
		if got := runRegions(t, p, regionPipeline, 8); got != want {
			t.Fatalf("run %d differs from run 0", i+1)
		}
	}
}

// TestRegionReportSurfacesPartition checks the report distinguishes the
// per-region path from the sharded fallback on a program that splits.
func TestRegionReportSurfacesPartition(t *testing.T) {
	t.Parallel()
	p := frontend.MustParse(`
PROGRAM split
INTEGER a, b, c, d
a = 5
b = a + 1
PRINT b
c = 7
d = c + 2
PRINT d
END`)
	o := specs.MustCompile("CTP")
	_, rep, err := o.ApplyAllRegions(context.Background(), p.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 4 {
		t.Errorf("report workers = %d, want 4", rep.Workers)
	}
	if rep.Sharded || rep.Regions < 2 {
		t.Errorf("CTP on a splittable program should take the region path: %+v", rep)
	}
	var fus engine.RegionReport
	_, fus, err = specs.MustCompile("FUS").ApplyAllRegions(context.Background(), p.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !fus.Sharded {
		t.Errorf("FUS is region-ineligible and should report the sharded path: %+v", fus)
	}
}
