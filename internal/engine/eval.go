package engine

import (
	"fmt"
	"strconv"

	"repro/dep"
	"repro/internal/cfg"
	"repro/internal/gospel"
	"repro/ir"
	"repro/optlib"
)

// evalError marks a condition that cannot be evaluated (absent neighbour,
// non-constant operand in arithmetic, ...). In precondition context such a
// condition is simply false; in action context it aborts the application.
type evalError struct{ msg string }

func (e *evalError) Error() string { return e.msg }

func errf(format string, args ...interface{}) error {
	return &evalError{fmt.Sprintf(format, args...)}
}

// context is the execution state of one optimizer run over one program
// snapshot.
type context struct {
	prog  *ir.Program
	graph *dep.Graph
	flow  *cfg.Graph // full CFG, built lazily for path()
	cost  *Cost
	opt   *Optimizer
	// inPattern switches cost accounting between pattern and dependence
	// checks.
	inPattern bool
	// patternOnly stops the precondition search after the Code_Pattern
	// section, skipping Depend clauses (dependence-override mode).
	patternOnly bool
	// timed makes matchPattern accumulate the Depend section's evaluation
	// time into depNS (set by the driver when a tracer is active).
	timed bool
	// depNS accumulates nanoseconds spent in matchDepend for one search.
	depNS int64
}

func (c *context) countCheck() {
	if c.inPattern {
		c.cost.PatternChecks++
	} else {
		c.cost.DepChecks++
	}
}

func (c *context) cfgFull() *cfg.Graph {
	if c.flow == nil {
		c.flow = cfg.Build(c.prog)
	}
	return c.flow
}

// evalBool evaluates a boolean precondition expression. Unevaluable
// conditions are false.
func (c *context) evalBool(env Env, e gospel.Expr) bool {
	v, err := c.eval(env, e)
	if err != nil {
		return false
	}
	return v.Kind == VBool && v.Bool
}

// eval evaluates any GOSpeL expression to a runtime value.
func (c *context) eval(env Env, e gospel.Expr) (Value, error) {
	switch e := e.(type) {
	case gospel.Num:
		if n, err := strconv.ParseInt(e.Text, 10, 64); err == nil {
			return numVal(n), nil
		}
		f, err := strconv.ParseFloat(e.Text, 64)
		if err != nil {
			return Value{}, errf("bad number %q", e.Text)
		}
		return opVal(ir.ConstOp(ir.FloatVal(f))), nil
	case gospel.Lit:
		return litVal(e.Name), nil
	case gospel.Ident:
		if v, ok := env[e.Name]; ok {
			return v, nil
		}
		if isLiteralName(e.Name) {
			return litVal(e.Name), nil
		}
		return Value{}, errf("unbound name %s", e.Name)
	case gospel.Attr:
		return c.evalAttr(env, e)
	case gospel.Call:
		return c.evalCall(env, e)
	case gospel.Not:
		v, err := c.eval(env, e.E)
		if err != nil {
			return Value{}, err
		}
		return boolVal(!(v.Kind == VBool && v.Bool)), nil
	case gospel.Binary:
		return c.evalBinary(env, e)
	}
	return Value{}, errf("unevaluable expression %s", e)
}

var literalNames = map[string]bool{
	"const": true, "var": true, "array": true,
	"assign": true, "sub": true, "mul": true, "div": true,
	"enddo": true, "if": true, "else": true, "endif": true,
	"print": true, "read": true, "doall": true,
	// "add", "mod", "do", "end" arrive as gospel.Lit via value position.
}

func isLiteralName(n string) bool { return literalNames[n] }

func (c *context) evalAttr(env Env, e gospel.Attr) (Value, error) {
	base, err := c.eval(env, e.Base)
	if err != nil {
		return Value{}, err
	}
	switch base.Kind {
	case VStmt:
		s := base.Stmt
		if s == nil {
			return Value{}, errf("attribute %s of absent statement", e.Name)
		}
		switch e.Name {
		case "opr_1", "opr_2", "opr_3":
			slot := int(e.Name[len(e.Name)-1] - '0')
			op := s.OperandSlot(slot)
			if op == nil {
				return opVal(ir.None()), nil
			}
			return opVal(*op), nil
		case "opc":
			return litVal(opcName(s)), nil
		case "kind":
			return litVal(kindName(s)), nil
		case "next":
			return stmtVal(c.prog.Next(s)), nil
		case "prev":
			return stmtVal(c.prog.Prev(s)), nil
		}
		return Value{}, errf("statement attribute %q", e.Name)
	case VLoop:
		l := base.Loop
		// head/end remain addressable while actions dismantle the loop
		// (fusion deletes the head before the end); the structural
		// attributes below require the loop to still be intact.
		switch e.Name {
		case "head":
			if c.prog.Index(l.Head) < 0 {
				return Value{}, errf("loop head no longer in program")
			}
			return stmtVal(l.Head), nil
		case "end":
			if c.prog.Index(l.End) < 0 {
				return Value{}, errf("loop end no longer in program")
			}
			return stmtVal(l.End), nil
		}
		if !l.Valid(c.prog) {
			return Value{}, errf("stale loop binding")
		}
		switch e.Name {
		case "body":
			return setVal(l.Body(c.prog)), nil
		case "lcv":
			return opVal(ir.VarOp(l.LCV())), nil
		case "init":
			return opVal(l.Head.Init), nil
		case "final":
			return opVal(l.Head.Final), nil
		case "step":
			return opVal(l.Head.Step), nil
		case "opc", "kind":
			return litVal(kindName(l.Head)), nil
		case "next", "prev":
			return c.loopNeighbour(l, e.Name == "next")
		}
		return Value{}, errf("loop attribute %q", e.Name)
	}
	return Value{}, errf("%s values have no attributes", base)
}

func (c *context) loopNeighbour(l ir.Loop, next bool) (Value, error) {
	loops := ir.Loops(c.prog)
	for i, cand := range loops {
		if cand.Head == l.Head {
			j := i - 1
			if next {
				j = i + 1
			}
			if j < 0 || j >= len(loops) {
				return Value{}, errf("no %s loop", map[bool]string{true: "next", false: "previous"}[next])
			}
			return loopVal(loops[j]), nil
		}
	}
	return Value{}, errf("stale loop binding")
}

// opcName maps a statement to its GOSpeL opc literal.
func opcName(s *ir.Stmt) string {
	if s.Kind != ir.SAssign {
		return kindName(s)
	}
	switch s.Op {
	case ir.OpCopy:
		return "assign"
	case ir.OpAdd:
		return "add"
	case ir.OpSub:
		return "sub"
	case ir.OpMul:
		return "mul"
	case ir.OpDiv:
		return "div"
	case ir.OpMod:
		return "mod"
	}
	return "?"
}

// kindName maps a statement to its GOSpeL kind literal.
func kindName(s *ir.Stmt) string {
	switch s.Kind {
	case ir.SAssign:
		return "assign"
	case ir.SDoHead:
		if s.Parallel {
			return "doall"
		}
		return "do"
	case ir.SDoEnd:
		return "enddo"
	case ir.SIf:
		return "if"
	case ir.SElse:
		return "else"
	case ir.SEndIf:
		return "endif"
	case ir.SPrint:
		return "print"
	case ir.SRead:
		return "read"
	}
	return "?"
}

func operandTypeName(o ir.Operand) string {
	switch o.Kind {
	case ir.Const:
		return "const"
	case ir.Var:
		return "var"
	case ir.ArrayRef:
		return "array"
	}
	return "none"
}

func (c *context) evalCall(env Env, e gospel.Call) (Value, error) {
	switch e.Fn {
	case "flow_dep", "anti_dep", "out_dep", "ctrl_dep":
		return c.evalDepPred(env, e)
	case "fused_dep":
		return c.evalFusedDep(env, e)
	case "mem", "nmem":
		c.cost.MemChecks++
		sv, err := c.eval(env, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		set, err := c.evalSet(env, e.Args[1])
		if err != nil {
			return Value{}, err
		}
		in := false
		for _, m := range set {
			if m == sv.Stmt {
				in = true
				break
			}
		}
		if e.Fn == "nmem" {
			in = !in
		}
		return boolVal(in), nil
	case "path":
		set, err := c.pathSet(env, e)
		if err != nil {
			return Value{}, err
		}
		return setVal(set), nil
	case "inter", "union":
		a, err := c.evalSet(env, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		b, err := c.evalSet(env, e.Args[1])
		if err != nil {
			return Value{}, err
		}
		if e.Fn == "inter" {
			inB := map[*ir.Stmt]bool{}
			for _, s := range b {
				inB[s] = true
			}
			var out []*ir.Stmt
			for _, s := range a {
				if inB[s] {
					out = append(out, s)
				}
			}
			return setVal(out), nil
		}
		seen := map[*ir.Stmt]bool{}
		var out []*ir.Stmt
		for _, s := range append(append([]*ir.Stmt{}, a...), b...) {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		return setVal(out), nil
	case "operand":
		sv, err := c.eval(env, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		pv, err := c.eval(env, e.Args[1])
		if err != nil {
			return Value{}, err
		}
		if sv.Kind != VStmt || sv.Stmt == nil {
			return Value{}, errf("operand() needs a statement")
		}
		op := sv.Stmt.OperandSlot(int(pv.Num))
		if op == nil {
			return Value{}, errf("statement S%d has no operand %d", sv.Stmt.ID, pv.Num)
		}
		return opVal(*op), nil
	case "type":
		ov, err := c.eval(env, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		if ov.Kind != VOperand {
			return Value{}, errf("type() needs an operand")
		}
		return litVal(operandTypeName(ov.Op)), nil
	case "itype":
		ov, err := c.eval(env, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		if ov.Kind != VOperand {
			return Value{}, errf("itype() needs an operand")
		}
		return boolVal(optlib.IntTyped(c.prog, ov.Op)), nil
	case "trip":
		lv, err := c.eval(env, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		if lv.Kind != VLoop || !lv.Loop.Valid(c.prog) {
			return Value{}, errf("trip() needs a loop")
		}
		h := lv.Loop.Head
		if !h.Init.IsConst() || !h.Final.IsConst() || !h.Step.IsConst() {
			return Value{}, errf("trip() needs constant bounds")
		}
		step := h.Step.Val.AsInt()
		if step == 0 {
			return Value{}, errf("zero loop step")
		}
		n := (h.Final.Val.AsInt()-h.Init.Val.AsInt())/step + 1
		if n < 0 {
			n = 0
		}
		return numVal(n), nil
	case "eval":
		return c.evalEval(env, e.Args[0])
	case "subst":
		ov, err := c.eval(env, e.Args[0])
		if err != nil {
			return Value{}, err
		}
		if ov.Kind != VOperand || !ov.Op.IsVar() {
			return Value{}, errf("subst target must be a scalar variable operand")
		}
		repl, err := c.linearize(env, e.Args[1])
		if err != nil {
			return Value{}, err
		}
		return substVal(&SubstVal{Var: ov.Op.Name, Repl: repl}), nil
	}
	return Value{}, errf("unknown function %q", e.Fn)
}

// evalDepPred evaluates a fully-bound dependence predicate.
func (c *context) evalDepPred(env Env, e gospel.Call) (Value, error) {
	c.cost.DepChecks++
	kind := depKindOf(e.Fn)
	src, err := c.eval(env, e.Args[0])
	if err != nil {
		return Value{}, err
	}
	dst, err := c.eval(env, e.Args[1])
	if err != nil {
		return Value{}, err
	}
	if src.Kind != VStmt || dst.Kind != VStmt || src.Stmt == nil || dst.Stmt == nil {
		return Value{}, errf("%s needs two statements", e.Fn)
	}
	if e.CarriedBy != "" {
		lv, ok := env[e.CarriedBy]
		if !ok || lv.Kind != VLoop {
			return Value{}, errf("carried(%s): not a bound loop", e.CarriedBy)
		}
		level := loopLevel(c.prog, src.Stmt, dst.Stmt, lv.Loop)
		if level == 0 {
			return boolVal(false), nil
		}
		for _, d := range c.graph.Query(kind, src.Stmt, dst.Stmt, nil) {
			if d.Carried && d.Level == level {
				return boolVal(true), nil
			}
		}
		return boolVal(false), nil
	}
	if e.Independent {
		for _, d := range c.graph.Query(kind, src.Stmt, dst.Stmt, nil) {
			if !d.Carried {
				return boolVal(true), nil
			}
		}
		return boolVal(false), nil
	}
	return boolVal(c.graph.Exists(kind, src.Stmt, dst.Stmt, e.Dir)), nil
}

// loopLevel returns the 1-based level of loop l among the common loops of
// s and t, or 0 when l is not common to both.
func loopLevel(p *ir.Program, s, t *ir.Stmt, l ir.Loop) int {
	for i, cl := range ir.CommonLoops(p, s, t) {
		if cl.Head == l.Head {
			return i + 1
		}
	}
	return 0
}

func depKindOf(fn string) dep.Kind {
	switch fn {
	case "flow_dep":
		return dep.Flow
	case "anti_dep":
		return dep.Anti
	case "out_dep":
		return dep.Output
	case "ctrl_dep":
		return dep.Control
	}
	panic("engine: bad dep predicate " + fn)
}

func (c *context) evalFusedDep(env Env, e gospel.Call) (Value, error) {
	c.cost.DepChecks++
	sm, err := c.eval(env, e.Args[0])
	if err != nil {
		return Value{}, err
	}
	sn, err := c.eval(env, e.Args[1])
	if err != nil {
		return Value{}, err
	}
	l1, err := c.eval(env, e.Args[2])
	if err != nil {
		return Value{}, err
	}
	l2, err := c.eval(env, e.Args[3])
	if err != nil {
		return Value{}, err
	}
	if sm.Kind != VStmt || sn.Kind != VStmt || l1.Kind != VLoop || l2.Kind != VLoop {
		return Value{}, errf("fused_dep needs (Stmt, Stmt, Loop, Loop)")
	}
	dirs := dep.FusedDirections(c.prog, sm.Stmt, sn.Stmt, l1.Loop, l2.Loop)
	want := dep.DirAny
	if len(e.Dir) > 0 {
		want = e.Dir[0]
	}
	return boolVal(dirs.Intersect(want) != 0), nil
}

func (c *context) pathSet(env Env, e gospel.Call) ([]*ir.Stmt, error) {
	av, err := c.eval(env, e.Args[0])
	if err != nil {
		return nil, err
	}
	bv, err := c.eval(env, e.Args[1])
	if err != nil {
		return nil, err
	}
	if av.Kind != VStmt || bv.Kind != VStmt || av.Stmt == nil || bv.Stmt == nil {
		return nil, errf("path() needs two statements")
	}
	g := c.cfgFull()
	ai, bi := c.prog.Index(av.Stmt), c.prog.Index(bv.Stmt)
	fromA := g.ReachableFrom(ai)
	toB := g.Reaches(bi)
	var out []*ir.Stmt
	for i := 0; i < c.prog.Len(); i++ {
		if i == ai || i == bi {
			continue
		}
		if fromA[i] && toB[i] {
			out = append(out, c.prog.At(i))
		}
	}
	return out, nil
}

// evalSet evaluates a set expression: a loop (its body), an attribute
// yielding a set, path(...), inter/union, or an `all`-bound variable.
func (c *context) evalSet(env Env, e gospel.Expr) ([]*ir.Stmt, error) {
	v, err := c.eval(env, e)
	if err != nil {
		return nil, err
	}
	switch v.Kind {
	case VSet:
		return v.Set, nil
	case VLoop:
		if !v.Loop.Valid(c.prog) {
			return nil, errf("stale loop binding in set expression")
		}
		return v.Loop.Body(c.prog), nil
	}
	return nil, errf("%s is not a set", v)
}

// evalEval implements eval(x): arithmetic over constant operands, or the
// constant folding of a whole statement's right-hand side.
func (c *context) evalEval(env Env, arg gospel.Expr) (Value, error) {
	v, err := c.eval(env, arg)
	if err != nil {
		return Value{}, err
	}
	switch v.Kind {
	case VStmt:
		s := v.Stmt
		if s == nil || s.Kind != ir.SAssign || s.Op == ir.OpCopy {
			return Value{}, errf("eval() of a statement needs a binary assignment")
		}
		if !s.A.IsConst() || !s.B.IsConst() {
			return Value{}, errf("eval() needs constant operands")
		}
		return opVal(ir.ConstOp(ir.Arith(s.Op, s.A.Val, s.B.Val))), nil
	case VNum:
		return opVal(ir.IntOp(v.Num)), nil
	case VOperand:
		if !v.Op.IsConst() {
			return Value{}, errf("eval() needs a constant operand")
		}
		return v, nil
	}
	return Value{}, errf("eval() cannot evaluate %s", v)
}

// numeric extracts an integer from a numeric value or constant operand.
func numeric(v Value) (int64, error) {
	switch v.Kind {
	case VNum:
		return v.Num, nil
	case VOperand:
		if v.Op.IsConst() {
			return v.Op.Val.AsInt(), nil
		}
	}
	return 0, errf("%s is not numeric", v)
}

func (c *context) evalBinary(env Env, e gospel.Binary) (Value, error) {
	switch e.Op {
	case "and":
		l, err := c.eval(env, e.L)
		if err != nil || l.Kind != VBool {
			return boolVal(false), err
		}
		if !l.Bool {
			return boolVal(false), nil
		}
		r, err := c.eval(env, e.R)
		if err != nil || r.Kind != VBool {
			return boolVal(false), err
		}
		return boolVal(r.Bool), nil
	case "or":
		l, err := c.eval(env, e.L)
		if err == nil && l.Kind == VBool && l.Bool {
			return boolVal(true), nil
		}
		r, err := c.eval(env, e.R)
		if err != nil {
			return boolVal(false), nil
		}
		return boolVal(r.Kind == VBool && r.Bool), nil
	case "+", "-", "*", "/", "mod":
		l, err := c.eval(env, e.L)
		if err != nil {
			return Value{}, err
		}
		r, err := c.eval(env, e.R)
		if err != nil {
			return Value{}, err
		}
		ln, err := numeric(l)
		if err != nil {
			return Value{}, err
		}
		rn, err := numeric(r)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case "+":
			return numVal(ln + rn), nil
		case "-":
			return numVal(ln - rn), nil
		case "*":
			return numVal(ln * rn), nil
		case "/":
			if rn == 0 {
				return Value{}, errf("division by zero")
			}
			return numVal(ln / rn), nil
		default:
			if rn == 0 {
				return Value{}, errf("mod by zero")
			}
			return numVal(ln % rn), nil
		}
	}
	// Relational comparison.
	c.countCheck()
	l, err := c.eval(env, e.L)
	if err != nil {
		return Value{}, err
	}
	r, err := c.eval(env, e.R)
	if err != nil {
		return Value{}, err
	}
	res, err := c.compareValues(e.Op, l, r)
	if err != nil {
		return Value{}, err
	}
	return boolVal(res), nil
}

func (c *context) compareValues(op string, l, r Value) (bool, error) {
	// Statement identity and program order (the BNF's StmtId relop StmtId:
	// <, <= etc. compare positions in the program).
	if l.Kind == VStmt && r.Kind == VStmt {
		switch op {
		case "==":
			return l.Stmt == r.Stmt, nil
		case "!=":
			return l.Stmt != r.Stmt, nil
		}
		li, ri := c.prog.Index(l.Stmt), c.prog.Index(r.Stmt)
		if li < 0 || ri < 0 {
			return false, errf("program-order comparison of absent statements")
		}
		switch op {
		case "<":
			return li < ri, nil
		case "<=":
			return li <= ri, nil
		case ">":
			return li > ri, nil
		case ">=":
			return li >= ri, nil
		}
		return false, errf("unknown statement comparison %q", op)
	}
	// Literal comparison (opc, kind, operand type).
	if l.Kind == VLit || r.Kind == VLit {
		ls, rs := l.Lit, r.Lit
		if l.Kind != VLit || r.Kind != VLit {
			return false, errf("cannot compare %s with %s", l, r)
		}
		switch op {
		case "==":
			return ls == rs, nil
		case "!=":
			return ls != rs, nil
		}
		return false, errf("literals only compare with == or !=")
	}
	// Operand structural comparison for ==/!= on non-constant operands.
	if l.Kind == VOperand && r.Kind == VOperand &&
		(!l.Op.IsConst() || !r.Op.IsConst()) {
		switch op {
		case "==":
			return l.Op.Equal(r.Op), nil
		case "!=":
			return !l.Op.Equal(r.Op), nil
		}
		return false, errf("non-constant operands only compare with == or !=")
	}
	// Numeric comparison.
	ln, err := numeric(l)
	if err != nil {
		return false, err
	}
	rn, err := numeric(r)
	if err != nil {
		return false, err
	}
	switch op {
	case "==":
		return ln == rn, nil
	case "!=":
		return ln != rn, nil
	case "<":
		return ln < rn, nil
	case "<=":
		return ln <= rn, nil
	case ">":
		return ln > rn, nil
	case ">=":
		return ln >= rn, nil
	}
	return false, errf("unknown comparison %q", op)
}

// linearize converts an arithmetic GOSpeL expression over variables and
// constants into an affine ir.LinExpr (for subst replacements).
func (c *context) linearize(env Env, e gospel.Expr) (ir.LinExpr, error) {
	switch e := e.(type) {
	case gospel.Num:
		n, err := strconv.ParseInt(e.Text, 10, 64)
		if err != nil {
			return ir.LinExpr{}, errf("non-integer in substitution: %s", e.Text)
		}
		return ir.ConstExpr(n), nil
	case gospel.Binary:
		l, lerr := c.linearize(env, e.L)
		r, rerr := c.linearize(env, e.R)
		switch e.Op {
		case "+":
			if lerr == nil && rerr == nil {
				return l.Add(r), nil
			}
		case "-":
			if lerr == nil && rerr == nil {
				return l.Sub(r), nil
			}
		case "*":
			if lerr == nil && rerr == nil {
				if l.IsConst() {
					return r.Scale(l.Normalize().Const), nil
				}
				if r.IsConst() {
					return l.Scale(r.Normalize().Const), nil
				}
			}
		}
		return ir.LinExpr{}, errf("non-affine substitution expression")
	default:
		v, err := c.eval(env, e)
		if err != nil {
			return ir.LinExpr{}, err
		}
		if v.Kind == VOperand {
			switch {
			case v.Op.IsVar():
				return ir.VarExpr(v.Op.Name), nil
			case v.Op.IsConst() && !v.Op.Val.IsFloat:
				return ir.ConstExpr(v.Op.Val.Int), nil
			}
		}
		if v.Kind == VNum {
			return ir.ConstExpr(v.Num), nil
		}
		return ir.LinExpr{}, errf("cannot linearize %s", v)
	}
}
