package engine

import (
	"strings"
	"testing"

	"repro/dep"
	"repro/internal/frontend"
	"repro/internal/gospel"
	"repro/ir"
)

const ctpSpec = `
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos2): flow_dep(Sl, Sj, (=)) AND (Si != Sl) AND (pos2 == pos);
ACTION
  modify(operand(Sj, pos), Si.opr_2);
`

const inxSpec = `
TYPE
  Stmt: Sn, Sm;
  Tight Loops: (L1, L2);
PRECOND
  Code_Pattern
    any (L1, L2);
  Depend
    no L1.head: flow_dep(L1.head, L2.head);
    no (Sm, Sn): mem(Sm, L2) AND mem(Sn, L2), flow_dep(Sn, Sm, (<,>));
ACTION
  move(L1.head, L2.head);
  move(L1.end, L2.end.prev);
`

func compile(t *testing.T, name, src string, opts ...Option) *Optimizer {
	t.Helper()
	spec, err := gospel.ParseAndCheck(name, src)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Compile(spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestCTPAppliesToSimpleUse(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 5
y = x + 1
END`)
	o := compile(t, "CTP", ctpSpec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("CTP should apply")
	}
	use := p.At(1)
	if !use.A.IsConst() || use.A.Val.AsInt() != 5 {
		t.Fatalf("use not propagated: %s", ir.FormatStmt(use))
	}
}

func TestCTPAllUses(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y, z
x = 5
y = x + x
z = x
END`)
	o := compile(t, "CTP", ctpSpec)
	apps, err := o.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	// Three uses: positions 2 and 3 in y = x + x, position 2 in z = x.
	if len(apps) != 3 {
		t.Fatalf("applications = %d, want 3\n%s", len(apps), p)
	}
	if got := ir.FormatStmt(p.At(1)); got != "y := 5 + 5" {
		t.Errorf("stmt = %q", got)
	}
	if got := ir.FormatStmt(p.At(2)); got != "z := 5" {
		t.Errorf("stmt = %q", got)
	}
}

func TestCTPBlockedByMultipleReachingDefs(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y, c
READ c
IF (c > 0) THEN
  x = 1
ELSE
  x = 2
ENDIF
y = x
END`)
	o := compile(t, "CTP", ctpSpec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatalf("CTP must not apply with two reaching defs:\n%s", p)
	}
}

func TestCTPPropagatesOnlyCleanUse(t *testing.T) {
	// One use has a second reaching def, another does not.
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y, z, c
x = 7
y = x
READ c
IF (c > 0) THEN
  x = 9
ENDIF
z = x
END`)
	o := compile(t, "CTP", ctpSpec)
	apps, err := o.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	// y = x gets 7; z = x is reached by both x=7 and x=9.
	if got := ir.FormatStmt(p.At(1)); got != "y := 7" {
		t.Errorf("clean use: %q", got)
	}
	last := p.At(p.Len() - 1)
	if last.A.IsConst() {
		t.Errorf("ambiguous use must stay: %s", ir.FormatStmt(last))
	}
	// x = 9 also has exactly one clean use? No: z = x has two defs. So only
	// one application in total.
	if len(apps) != 1 {
		t.Errorf("applications = %d, want 1", len(apps))
	}
}

func TestINXInterchangesLegalNest(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 1, 10
    a(i,j) = a(i,j) + 1.0
  ENDDO
ENDDO
END`)
	o := compile(t, "INX", inxSpec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("INX should apply to a clean nest")
	}
	loops := ir.Loops(p)
	if len(loops) != 2 || loops[0].LCV() != "j" || loops[1].LCV() != "i" {
		t.Fatalf("loops after interchange: %v\n%s", loops, p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestINXBlockedByInterchangePreventingDep(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 2, 10
  DO j = 1, 9
    a(i,j) = a(i-1,j+1)
  ENDDO
ENDDO
END`)
	o := compile(t, "INX", inxSpec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatalf("INX must be blocked by the (<,>) dependence:\n%s", p)
	}
}

func TestINXBlockedByTriangularBounds(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 1, i
    a(i,j) = 0.0
  ENDDO
ENDDO
END`)
	o := compile(t, "INX", inxSpec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("INX must be blocked when inner bounds depend on the outer LCV")
	}
}

func TestINXApplyAllDoesNotPingPong(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 1, 10
    a(i,j) = 1.0
  ENDDO
ENDDO
END`)
	o := compile(t, "INX", inxSpec)
	apps, err := o.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("INX applied %d times; signature dedup failed", len(apps))
	}
}

func TestPreconditionsCountsPoints(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y, z
x = 5
y = x
z = x
END`)
	o := compile(t, "CTP", ctpSpec)
	pts := o.Preconditions(p, dep.Compute(p))
	if len(pts) != 2 {
		t.Fatalf("application points = %d, want 2", len(pts))
	}
	for _, env := range pts {
		if env["Si"].Stmt != p.At(0) {
			t.Error("Si must be the constant definition")
		}
		if env["pos"].Kind != VNum {
			t.Error("pos must be bound")
		}
	}
}

func TestCostCountersMove(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 5
y = x
END`)
	o := compile(t, "CTP", ctpSpec)
	if o.Cost().Total() != 0 {
		t.Fatal("fresh optimizer must have zero cost")
	}
	if _, err := o.ApplyOnce(p); err != nil {
		t.Fatal(err)
	}
	c := o.Cost()
	if c.PatternChecks == 0 {
		t.Error("pattern checks not counted")
	}
	if c.DepChecks == 0 {
		t.Error("dep checks not counted")
	}
	if c.ActionOps != 1 {
		t.Errorf("action ops = %d, want 1", c.ActionOps)
	}
	o.ResetCost()
	if o.Cost().Total() != 0 {
		t.Error("ResetCost failed")
	}
}

func TestStrategiesAgreeOnResult(t *testing.T) {
	src := `
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 1, 10
    a(i,j) = a(i,j) * 2.0
  ENDDO
ENDDO
END`
	var programs []*ir.Program
	var results []bool
	for _, strat := range []Strategy{StrategyMembers, StrategyDeps, StrategyHeuristic} {
		p := frontend.MustParse(src)
		o := compile(t, "INX", inxSpec, WithStrategy(strat))
		applied, err := o.ApplyOnce(p)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		programs = append(programs, p)
		results = append(results, applied)
	}
	if !results[0] || !results[1] || !results[2] {
		t.Fatalf("all strategies must apply: %v", results)
	}
	if !programs[0].Equal(programs[1]) || !programs[0].Equal(programs[2]) {
		t.Fatal("strategies must produce identical programs")
	}
}

func TestForallCopyAndSubst(t *testing.T) {
	// Unroll-by-2 style action over a loop body.
	lurSpec := `
TYPE
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: type(L1.init) == const AND type(L1.final) == const AND type(L1.step) == const;
  Depend
    any L1.head: (trip(L1) mod 2 == 0);
ACTION
  forall Sm in L1.body do
    copy(Sm, L1.end.prev, Sc);
    modify(Sc, subst(L1.lcv, L1.lcv + L1.step));
  end
  modify(L1.step, eval(L1.step * 2));
`
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(20), b(20)
DO i = 1, 10
  a(i) = b(i)
ENDDO
END`)
	o := compile(t, "LUR", lurSpec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("LUR should apply")
	}
	loops := ir.Loops(p)
	if len(loops) != 1 {
		t.Fatal("loop structure lost")
	}
	l := loops[0]
	if !l.Head.Step.IsConst() || l.Head.Step.Val.AsInt() != 2 {
		t.Errorf("step = %v, want 2", l.Head.Step)
	}
	body := l.Body(p)
	if len(body) != 2 {
		t.Fatalf("body = %d stmts, want 2\n%s", len(body), p)
	}
	if got := ir.FormatStmt(body[1]); got != "a(i+1) := b(i+1)" {
		t.Errorf("unrolled copy = %q", got)
	}
}

func TestTripOddBlocksUnroll(t *testing.T) {
	lurSpec := `
TYPE
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: type(L1.init) == const AND type(L1.final) == const;
  Depend
    any L1.head: (trip(L1) mod 2 == 0);
ACTION
  modify(L1.step, eval(L1.step * 2));
`
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(20)
DO i = 1, 9
  a(i) = 0.0
ENDDO
END`)
	o := compile(t, "LUR", lurSpec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("odd trip count must not unroll")
	}
}

func TestModifyOpcFolding(t *testing.T) {
	cfoSpec := `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND Si.opc != assign
      AND type(Si.opr_2) == const AND type(Si.opr_3) == const;
  Depend
ACTION
  modify(Si.opr_2, eval(Si));
  modify(Si.opc, assign);
`
	p := frontend.MustParse(`
PROGRAM p
INTEGER x
x = 3 + 4
END`)
	o := compile(t, "CFO", cfoSpec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("CFO should apply")
	}
	if got := ir.FormatStmt(p.At(0)); got != "x := 7" {
		t.Errorf("folded = %q", got)
	}
}

func TestDeleteActionAndRollback(t *testing.T) {
	dceSpec := `
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND type(Si.opr_1) == var;
  Depend
    no Sj: flow_dep(Si, Sj);
ACTION
  delete(Si);
`
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 1
y = 2
PRINT y
END`)
	o := compile(t, "DCE", dceSpec)
	apps, err := o.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("DCE applications = %d, want 1 (only x=1 is dead)", len(apps))
	}
	if p.Len() != 2 {
		t.Fatalf("program length = %d\n%s", p.Len(), p)
	}
	if strings.Contains(p.String(), "x := 1") {
		t.Error("dead statement not removed")
	}
}

func TestParallelizeAction(t *testing.T) {
	parSpec := `
TYPE
  Stmt: Sm, Sn;
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: L1.kind == do;
  Depend
    no (Sm, Sn): mem(Sm, L1) AND mem(Sn, L1),
      flow_dep(Sm, Sn, carried(L1)) OR anti_dep(Sm, Sn, carried(L1)) OR out_dep(Sm, Sn, carried(L1));
ACTION
  modify(L1.opc, doall);
`
	clean := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10), b(10)
DO i = 1, 10
  a(i) = b(i) + 1.0
ENDDO
END`)
	o := compile(t, "PAR", parSpec)
	applied, err := o.ApplyOnce(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !applied || !clean.At(0).Parallel {
		t.Fatalf("clean loop must parallelize:\n%s", clean)
	}

	dirty := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10)
DO i = 2, 10
  a(i) = a(i-1)
ENDDO
END`)
	o2 := compile(t, "PAR", parSpec)
	applied, err = o2.ApplyOnce(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("recurrence must not parallelize")
	}
}

func TestAllQuantifierBindsSet(t *testing.T) {
	spec := `
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    all Sj: flow_dep(Si, Sj, (=));
ACTION
  forall S in Sj do
    modify(operand(S, 2), Si.opr_2);
  end
  delete(Si);
`
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, a, b
x = 4
a = x
b = x
END`)
	o := compile(t, "T", spec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("should apply")
	}
	if p.Len() != 2 {
		t.Fatalf("x=4 should be deleted:\n%s", p)
	}
	if !p.At(0).A.IsConst() || !p.At(1).A.IsConst() {
		t.Fatalf("all uses must be rewritten:\n%s", p)
	}
}

func TestMoveWithNilAnchorMovesToFront(t *testing.T) {
	icmLike := `
TYPE
  Stmt: Si;
  Loop: L1;
PRECOND
  Code_Pattern
    any L1;
  Depend
    any Si: mem(Si, L1), (Si == Si);
ACTION
  move(Si, L1.head.prev);
`
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, c
DO i = 1, 3
  c = 5
ENDDO
END`)
	o := compile(t, "T", icmLike)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("should apply")
	}
	if p.At(0).Kind != ir.SAssign {
		t.Fatalf("statement not hoisted to front:\n%s", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFusedDepPredicate(t *testing.T) {
	fusSpec := `
TYPE
  Stmt: Sm, Sn;
  Adjacent Loops: (L1, L2);
PRECOND
  Code_Pattern
    any (L1, L2): L1.init == L2.init AND L1.final == L2.final
      AND L1.step == L2.step AND L1.lcv == L2.lcv;
  Depend
    no (Sm, Sn): mem(Sm, L1) AND mem(Sn, L2), fused_dep(Sm, Sn, L1, L2, (>));
ACTION
  forall S in L2.body do
    move(S, L1.end.prev);
  end
  delete(L2.head);
  delete(L2.end);
`
	legal := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10), b(10)
DO i = 1, 10
  a(i) = 1.0
ENDDO
DO i = 1, 10
  b(i) = a(i)
ENDDO
END`)
	o := compile(t, "FUS", fusSpec)
	applied, err := o.ApplyOnce(legal)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("legal fusion should apply")
	}
	if len(ir.Loops(legal)) != 1 {
		t.Fatalf("loops after fusion:\n%s", legal)
	}
	if err := legal.Validate(); err != nil {
		t.Fatal(err)
	}

	illegal := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(12), b(10)
DO i = 1, 10
  a(i) = 1.0
ENDDO
DO i = 1, 10
  b(i) = a(i+1)
ENDDO
END`)
	o2 := compile(t, "FUS", fusSpec)
	applied, err = o2.ApplyOnce(illegal)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("fusion-preventing dependence must block")
	}
}

func TestApplyAtWithOverride(t *testing.T) {
	// The interactive interface lets the user apply at a point even when
	// dependences say no: ApplyAt takes any binding.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 2, 10
  DO j = 1, 9
    a(i,j) = a(i-1,j+1)
  ENDDO
ENDDO
END`)
	o := compile(t, "INX", inxSpec)
	pairs := ir.TightPairs(p)
	env := Env{"L1": loopVal(pairs[0][0]), "L2": loopVal(pairs[0][1])}
	if err := o.ApplyAt(p, dep.Compute(p), env); err != nil {
		t.Fatal(err)
	}
	loops := ir.Loops(p)
	if loops[0].LCV() != "j" {
		t.Fatal("override application failed")
	}
}

func TestCompileRejectsBadSpecs(t *testing.T) {
	spec, err := gospel.ParseAndCheck("X", `
TYPE
  Stmt: A, B;
PRECOND
  Code_Pattern
    all A;
    any B;
  Depend
ACTION
  delete(B);
`)
	if err != nil {
		t.Fatal(err)
	}
	spec.Patterns[0].Elems = append(spec.Patterns[0].Elems, "B") // corrupt
	if _, err := Compile(spec); err == nil {
		t.Error("multi-element 'all' pattern must be rejected")
	}
	if _, err := Compile(nil); err == nil {
		t.Error("nil spec must be rejected")
	}
}

func TestAddAction(t *testing.T) {
	spec := `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
ACTION
  add(Si, Si, Sn);
  modify(operand(Sn, 2), eval(Si.opr_2 + 1));
`
	p := frontend.MustParse(`
PROGRAM p
INTEGER x
x = 1
END`)
	o := compile(t, "T", spec)
	applied, err := o.ApplyOnce(p)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("should apply")
	}
	if p.Len() != 2 {
		t.Fatalf("add failed:\n%s", p)
	}
	if got := ir.FormatStmt(p.At(1)); got != "x := 2" {
		t.Errorf("added stmt = %q", got)
	}
}

// TestDeterministicCosts: repeated precondition searches over identical
// program snapshots must count identical costs — candidate enumeration may
// not depend on map iteration order anywhere in the stack.
func TestDeterministicCosts(t *testing.T) {
	src := `
PROGRAM p
INTEGER i, j
REAL a(12,12), b(12)
DO i = 1, 10
  DO j = 1, 10
    a(i,j) = a(i,j) + 1.0
  ENDDO
ENDDO
DO i = 1, 10
  b(i) = a(i,1) * 2.0
ENDDO
END`
	for _, specSrc := range []string{inxSpec, ctpSpec} {
		var costs []int
		for round := 0; round < 3; round++ {
			p := frontend.MustParse(src)
			o := compile(t, "D", specSrc)
			o.Preconditions(p, dep.Compute(p))
			costs = append(costs, o.Cost().Total())
		}
		if costs[0] != costs[1] || costs[1] != costs[2] {
			t.Errorf("nondeterministic costs: %v", costs)
		}
	}
}
