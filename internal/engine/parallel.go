package engine

import (
	stdcontext "context"
	"errors"
	"sync/atomic"
	"time"

	"repro/dep"
	"repro/internal/gospel"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/region"
	"repro/ir"
	"repro/optlib"
)

// RegionReport describes how one region-parallel pass executed.
type RegionReport struct {
	// Workers is the resolved worker count (par.Workers of the request).
	Workers int
	// Regions is the partition size the partitioner produced for the
	// program at pass entry; 1 means the dependence relation does not
	// split it.
	Regions int
	// Sharded reports that the pass ran the whole program with a sharded
	// candidate search (because the program did not partition, the spec
	// was not region-eligible, or the partitioned attempt fell back).
	Sharded bool
	// Fallback reports that a partitioned attempt was abandoned (a region
	// hit the application cap, so only a whole-program run can decide
	// where the cap cuts) and the pass re-ran on the untouched program.
	Fallback bool
}

// ApplyAllRegions is ApplyAllCtx with intra-program parallelism. The
// output program is byte-identical to the sequential driver at every
// worker count:
//
//   - When the dependence partitioner splits the program and the spec is
//     region-eligible, each region runs its own fixpoint on a private
//     sub-program with a private journal, and the results are spliced
//     back in region-index order (Tier A). Sequential search order is
//     position-ordered, so on non-interacting regions the sequential
//     driver is region 0's fixpoint, then region 1's, …, which is exactly
//     the merge order.
//   - Otherwise the sequential driver loop runs with its candidate search
//     sharded across workers; the globally smallest candidate index wins,
//     which is the binding the sequential scan finds (Tier B).
//
// workers < 1 selects GOMAXPROCS; workers == 1 is exactly ApplyAllCtx.
func (o *Optimizer) ApplyAllRegions(ctx stdcontext.Context, p *ir.Program, workers int) ([]Application, RegionReport, error) {
	w := par.Workers(workers)
	if w <= 1 {
		apps, err := o.ApplyAllCtx(ctx, p)
		return apps, RegionReport{Workers: 1, Regions: 1}, err
	}
	g := dep.Compute(p)
	pt := region.Compute(p, g)
	rep := RegionReport{Workers: w, Regions: pt.Len()}
	if pt.Len() >= 2 && region.EligibleSpec(o.Spec) {
		apps, ok, err := o.applyRegions(ctx, p, pt, w)
		if err != nil {
			return apps, rep, err
		}
		if ok {
			return apps, rep, nil
		}
		rep.Fallback = true
	}
	rep.Sharded = true
	apps, err := o.applySharded(ctx, p, w)
	return apps, rep, err
}

// applyRegions runs one private fixpoint per region (Tier A). ok=false
// with a nil error asks the caller to rerun on the (untouched) program.
func (o *Optimizer) applyRegions(ctx stdcontext.Context, p *ir.Program, pt region.Partition, workers int) (apps []Application, ok bool, err error) {
	t0 := time.Now()
	n := pt.Len()
	perApps := make([][]Application, n)
	perStats := make([]obs.PassStats, n)
	perCost := make([]Cost, n)
	perDur := make([]time.Duration, n)
	run := func(i int, sub *ir.Program) (int, error) {
		r0 := time.Now()
		// A private optimizer per region: same compiled plan, but private
		// cost counters and no hooks — the pass-level hooks fire once, on
		// the merged result.
		o2 := &Optimizer{
			Spec:            o.Spec,
			Strategy:        o.Strategy,
			RecomputeDeps:   o.RecomputeDeps,
			IncrementalDeps: o.IncrementalDeps,
			MaxApplications: o.MaxApplications,
		}
		if o.OnPassStats != nil {
			o2.OnPassStats = func(ps obs.PassStats) { perStats[i] = ps }
		}
		a, aerr := o2.ApplyAllCtx(ctx, sub)
		perApps[i] = a
		perCost[i] = o2.cost
		perDur[i] = time.Since(r0)
		return len(a), aerr
	}
	out, xerr := region.Execute(p, pt, workers, o.MaxApplications, run)
	if xerr != nil {
		if errors.Is(xerr, optlib.ErrIterationLimit) {
			return nil, false, nil
		}
		return nil, false, xerr
	}
	if out.Fallback {
		return nil, false, nil
	}
	for i := 0; i < n; i++ {
		o.cost.Add(perCost[i])
		apps = append(apps, perApps[i]...)
	}
	d := time.Since(t0)
	if o.Tracer.Enabled() {
		root := o.Tracer.Start("pass", obs.String("spec", o.Spec.Name))
		root.Set("parallel_workers", workers)
		root.Set("regions", n)
		root.Set("applications", len(apps))
		for i, r := range pt.Regions {
			sp := root.Child("region",
				obs.Int("index", i),
				obs.Int("start", r.Start),
				obs.Int("end", r.End),
				obs.Int("applications", len(perApps[i])))
			sp.EndWith(perDur[i])
		}
		root.EndWith(d)
	}
	if o.OnPassDone != nil {
		o.OnPassDone(o.Spec.Name, len(apps), d)
	}
	if o.OnPassStats != nil {
		sum := obs.PassStats{Spec: o.Spec.Name, Applications: len(apps), Duration: d}
		for _, ps := range perStats {
			sum.PatternChecks += ps.PatternChecks
			sum.DepChecks += ps.DepChecks
			sum.ScalarLookups += ps.ScalarLookups
			sum.ArrayLookups += ps.ArrayLookups
			sum.ControlLookups += ps.ControlLookups
			sum.IncrementalUpdates += ps.IncrementalUpdates
			sum.StructuralRebuilds += ps.StructuralRebuilds
			sum.Rollbacks += ps.Rollbacks
		}
		o.OnPassStats(sum)
	}
	return apps, true, nil
}

// applySharded runs the sequential driver loop with each iteration's
// candidate search fanned out across workers (Tier B). Applications
// happen one at a time on the caller's program, so the journal, the seen
// set and the dependence graph evolve exactly as in ApplyAllCtx.
func (o *Optimizer) applySharded(ctx stdcontext.Context, p *ir.Program, workers int) (apps []Application, err error) {
	traced := o.Tracer.Enabled()
	root := o.Tracer.Start("pass",
		obs.String("spec", o.Spec.Name), obs.Int("shard_workers", workers))
	var done []Application
	seen := map[string]bool{}
	log, owned := p.EnsureLog()
	if owned {
		defer log.Detach()
	}
	g := dep.Compute(p)
	g.SetWorkers(workers)
	var depAcc dep.Stats
	if o.OnPassDone != nil || o.OnPassStats != nil || traced {
		t0 := time.Now()
		costBase := o.cost
		rollbackBase := log.Rollbacks()
		defer func() {
			d := time.Since(t0)
			if err != nil {
				root.Set("error", err.Error())
			}
			root.Set("applications", len(apps))
			root.End()
			if o.OnPassDone != nil {
				o.OnPassDone(o.Spec.Name, len(apps), d)
			}
			if o.OnPassStats != nil {
				c, st := o.cost, depAcc.Add(g.Stats())
				o.OnPassStats(obs.PassStats{
					Spec:               o.Spec.Name,
					Applications:       len(apps),
					Duration:           d,
					PatternChecks:      int64(c.PatternChecks - costBase.PatternChecks),
					DepChecks:          int64(c.DepChecks - costBase.DepChecks),
					ScalarLookups:      st.ScalarLookups,
					ArrayLookups:       st.ArrayLookups,
					ControlLookups:     st.ControlLookups,
					IncrementalUpdates: st.IncrementalUpdates,
					StructuralRebuilds: st.StructuralRebuilds,
					Rollbacks:          log.Rollbacks() - rollbackBase,
				})
			}
		}()
	}
	for {
		if cerr := ctx.Err(); cerr != nil {
			return done, cerr
		}
		chosen, found := o.searchSharded(p, g, seen, workers)
		if !found {
			break
		}
		if len(done) >= o.MaxApplications {
			return done, optlib.ErrIterationLimit
		}
		sig := envSignature(chosen)
		seen[sig] = true
		ectx := o.newContext(p, g)
		start := log.Mark()
		if aerr := o.applyAt(ectx, chosen); aerr != nil {
			// Rolled back in place; the graph is still valid — keep going.
			continue
		}
		if traced {
			sp := root.Child("point",
				obs.Int("index", len(done)), obs.String("sig", sig))
			sp.End()
		}
		done = append(done, Application{Spec: o.Spec.Name, Signature: sig})
		if o.RecomputeDeps {
			if o.IncrementalDeps {
				g.Update(log.Since(start))
			} else {
				depAcc = depAcc.Add(g.Stats())
				g = dep.Compute(p)
				g.SetWorkers(workers)
			}
		}
		if owned {
			log.Reset()
		}
	}
	return done, nil
}

// searchSharded finds the first fresh application point — the same one
// the sequential search finds — by splitting the first pattern clause's
// candidate list into contiguous shards scanned concurrently. Candidates
// are enumerated once in program order; each worker reports the first
// fresh binding in its shard over a private graph shadow and cost
// counter, and the globally smallest candidate index wins. Sequential
// first-match order is lexicographic in (candidate index, subtree
// enumeration order), so the winner is exactly the sequential result.
// The seen set is only read here; the driver loop writes it between
// searches. An atomic high-water mark lets shards abandon candidates
// beyond an already-found index — it prunes work but cannot change the
// winner.
func (o *Optimizer) searchSharded(p *ir.Program, g *dep.Graph, seen map[string]bool, workers int) (Env, bool) {
	if len(o.Spec.Patterns) == 0 {
		return o.searchSeq(p, g, seen)
	}
	pc := o.Spec.Patterns[0]
	if pc.Quant == gospel.QAll {
		// The clause binds one set over the whole program; there is no
		// candidate list to shard.
		return o.searchSeq(p, g, seen)
	}
	ectx := o.newContext(p, g)
	cands := o.patternCandidates(ectx, pc, Env{})
	if len(cands) < 2*workers {
		return o.searchSeq(p, g, seen)
	}
	type shard struct {
		idx   int
		env   Env
		cost  Cost
		stats dep.Stats
	}
	var best atomic.Int64
	best.Store(int64(len(cands)))
	results := par.Map(workers, workers, func(s int) shard {
		lo := s * len(cands) / workers
		hi := (s + 1) * len(cands) / workers
		res := shard{idx: -1}
		sg := g.Shadow()
		wctx := &context{prog: p, graph: sg, cost: &res.cost, opt: o}
		for i := lo; i < hi; i++ {
			if int64(i) >= best.Load() {
				break
			}
			env := withBindings(Env{}, cands[i])
			if pc.Format != nil {
				wctx.inPattern = true
				ok := wctx.evalBool(env, pc.Format)
				wctx.inPattern = false
				if !ok {
					continue
				}
			}
			hit := false
			o.matchPattern(wctx, 1, env, func(e Env) bool {
				if seen[envSignature(e)] {
					return true
				}
				res.idx, res.env = i, e.clone()
				hit = true
				return false
			})
			if hit {
				for {
					b := best.Load()
					if int64(i) >= b || best.CompareAndSwap(b, int64(i)) {
						break
					}
				}
				break
			}
		}
		res.stats = sg.Stats()
		return res
	})
	win := -1
	for i := range results {
		o.cost.Add(results[i].cost)
		g.AddStats(results[i].stats)
		if results[i].idx >= 0 && (win < 0 || results[i].idx < results[win].idx) {
			win = i
		}
	}
	if win < 0 {
		return nil, false
	}
	return results[win].env, true
}

// searchSeq is one sequential first-fresh-match search, used when the
// candidate list is too small (or unshardable) to be worth fanning out.
func (o *Optimizer) searchSeq(p *ir.Program, g *dep.Graph, seen map[string]bool) (Env, bool) {
	ctx := o.newContext(p, g)
	var chosen Env
	found := false
	o.matchPattern(ctx, 0, Env{}, func(e Env) bool {
		if seen[envSignature(e)] {
			return true
		}
		chosen = e.clone()
		found = true
		return false
	})
	return chosen, found
}
