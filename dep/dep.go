// Package dep computes the data and control dependences GOSpeL
// preconditions are written in terms of: flow (δ), anti (δ̄), output (δ°)
// and control (δᶜ) dependences, each annotated with a direction vector over
// the loops common to the two statements (the paper, Section 2).
//
// Scalars are analyzed with the reaching-definitions / upward-exposed-uses
// dataflow from internal/dataflow, split into loop-independent and
// loop-carried dependences by re-running the analysis on the acyclic
// (back-edge-free) flow graph. Array references are analyzed pairwise with
// classical subscript tests (ZIV, strong SIV, and a GCD fallback), producing
// per-level direction sets.
package dep

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/ir"
)

// Kind is the dependence type.
type Kind int

const (
	Flow Kind = iota
	Anti
	Output
	Control
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Control:
		return "control"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DirSet is a set of possible directions at one loop level, a bitmask over
// {<, =, >}.
type DirSet uint8

const (
	DirLT  DirSet = 1 << iota // source iteration earlier (forward, '<')
	DirEQ                     // same iteration ('=')
	DirGT                     // source iteration later (backward, '>')
	DirAny = DirLT | DirEQ | DirGT
)

// Has reports whether d includes dir.
func (d DirSet) Has(dir DirSet) bool { return d&dir != 0 }

// Intersect returns the intersection.
func (d DirSet) Intersect(o DirSet) DirSet { return d & o }

// Reverse maps each direction to its opposite (swap of source and sink).
func (d DirSet) Reverse() DirSet {
	var r DirSet
	if d.Has(DirLT) {
		r |= DirGT
	}
	if d.Has(DirGT) {
		r |= DirLT
	}
	if d.Has(DirEQ) {
		r |= DirEQ
	}
	return r
}

func (d DirSet) String() string {
	switch d {
	case DirAny:
		return "*"
	case DirLT:
		return "<"
	case DirEQ:
		return "="
	case DirGT:
		return ">"
	case 0:
		return "∅"
	}
	var b strings.Builder
	if d.Has(DirLT) {
		b.WriteByte('<')
	}
	if d.Has(DirEQ) {
		b.WriteByte('=')
	}
	if d.Has(DirGT) {
		b.WriteByte('>')
	}
	return b.String()
}

// Vector is a direction vector: one DirSet per common loop, outermost first.
// A nil/empty vector means the statements share no loop (loop-independent
// dependence at nesting level zero).
type Vector []DirSet

func (v Vector) String() string {
	if len(v) == 0 {
		return "()"
	}
	parts := make([]string, len(v))
	for i, d := range v {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector { return append(Vector{}, v...) }

// Matches reports whether this dependence vector is compatible with a
// requested pattern, where each pattern element is a DirSet (use DirAny for
// the paper's '*'). An empty pattern (direction vector omitted in the
// specification) matches any vector. When the lengths differ the shorter
// side is padded: a dependence vector extends with '=' (the dependence is
// loop-independent with respect to loops it is not carried by — this is
// what lets the paper write flow_dep(Si, Sj, (=)) for statements at any
// nesting depth), and a pattern extends with '*' (unconstrained inner
// levels).
func (v Vector) Matches(pattern Vector) bool {
	if len(pattern) == 0 {
		return true
	}
	n := len(v)
	if len(pattern) > n {
		n = len(pattern)
	}
	for i := 0; i < n; i++ {
		ve, pe := DirEQ, DirAny
		if i < len(v) {
			ve = v[i]
		}
		if i < len(pattern) {
			pe = pattern[i]
		}
		if ve.Intersect(pe) == 0 {
			return false
		}
	}
	return true
}

// Dependence is one edge of the dependence graph: Src δ Dst.
type Dependence struct {
	Kind Kind
	Src  *ir.Stmt
	Dst  *ir.Stmt
	// Vec has one entry per loop common to Src and Dst, outermost first.
	Vec Vector
	// Var is the variable (scalar or array name) causing the dependence;
	// empty for control dependences.
	Var string
	// SrcPos / DstPos are the operand positions involved at each end
	// (the paper's optional (S, pos) result); 0 when not applicable
	// (e.g. subscript uses or control dependences).
	SrcPos int
	DstPos int
	// Carried reports a loop-carried dependence (some level is not '=').
	Carried bool
	// Level is the carrying loop level (1 = outermost common loop);
	// 0 for loop-independent dependences.
	Level int
}

func (d Dependence) String() string {
	return fmt.Sprintf("%s_dep(S%d → S%d, %s, %s)", d.Kind, d.Src.ID, d.Dst.ID, d.Var, d.Vec)
}

// Graph is the dependence graph of one program snapshot. It is invalidated
// by transformation; recompute after each applied optimization (the paper's
// interface offers the same choice).
type Graph struct {
	Prog *ir.Program
	Deps []Dependence

	// Entry is a synthetic statement standing for the implicit
	// zero-initialization of every scalar at program entry. A flow
	// dependence Entry → S marks a possibly-uninitialized use: the value
	// read at S is not always produced by an explicit definition, so
	// single-reaching-definition reasoning (constant and copy propagation)
	// must treat Entry as another reaching definition. Entry is not part
	// of the program's statement list.
	Entry *ir.Stmt

	// flow retains the underlying dataflow analysis (liveness etc.) for
	// clients such as the benefit estimator.
	flow *dataflow.Analysis

	from map[*ir.Stmt][]int
	to   map[*ir.Stmt][]int
}

// Dataflow returns the dataflow analysis computed for this snapshot.
func (g *Graph) Dataflow() *dataflow.Analysis { return g.flow }

// Compute builds the full dependence graph for p.
func Compute(p *ir.Program) *Graph {
	g := &Graph{
		Prog:  p,
		Entry: &ir.Stmt{Kind: ir.SAssign},
		from:  make(map[*ir.Stmt][]int),
		to:    make(map[*ir.Stmt][]int),
	}
	g.scalarDeps()
	g.arrayDeps()
	g.controlDeps()
	return g
}

func (g *Graph) add(d Dependence) {
	if d.Src == nil || d.Dst == nil {
		return
	}
	// Deduplicate identical edges (same kind/ends/var/vector).
	for _, di := range g.from[d.Src] {
		e := g.Deps[di]
		if e.Kind == d.Kind && e.Dst == d.Dst && e.Var == d.Var &&
			e.SrcPos == d.SrcPos && e.DstPos == d.DstPos && vecEqual(e.Vec, d.Vec) {
			return
		}
	}
	idx := len(g.Deps)
	g.Deps = append(g.Deps, d)
	g.from[d.Src] = append(g.from[d.Src], idx)
	g.to[d.Dst] = append(g.to[d.Dst], idx)
}

func vecEqual(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// From returns the dependences emanating from s.
func (g *Graph) From(s *ir.Stmt) []Dependence {
	return g.pick(g.from[s])
}

// To returns the dependences terminating at s.
func (g *Graph) To(s *ir.Stmt) []Dependence {
	return g.pick(g.to[s])
}

func (g *Graph) pick(idxs []int) []Dependence {
	out := make([]Dependence, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, g.Deps[i])
	}
	return out
}

// Query returns all dependences of the given kind between src and dst
// matching the direction pattern. Either src or dst may be nil as a
// wildcard. This is the paper's dep routine (Fig. 7) generalized to return
// the full match set; the engine layers the LST/IF search modes on top.
func (g *Graph) Query(kind Kind, src, dst *ir.Stmt, pattern Vector) []Dependence {
	var candidates []int
	switch {
	case src != nil:
		candidates = g.from[src]
	case dst != nil:
		candidates = g.to[dst]
	default:
		candidates = make([]int, len(g.Deps))
		for i := range g.Deps {
			candidates[i] = i
		}
	}
	var out []Dependence
	for _, i := range candidates {
		d := g.Deps[i]
		if d.Kind != kind {
			continue
		}
		if src != nil && d.Src != src {
			continue
		}
		if dst != nil && d.Dst != dst {
			continue
		}
		if !d.Vec.Matches(pattern) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Exists reports whether any dependence matches the query.
func (g *Graph) Exists(kind Kind, src, dst *ir.Stmt, pattern Vector) bool {
	return len(g.Query(kind, src, dst, pattern)) > 0
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, d := range g.Deps {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
