// Package dep computes the data and control dependences GOSpeL
// preconditions are written in terms of: flow (δ), anti (δ̄), output (δ°)
// and control (δᶜ) dependences, each annotated with a direction vector over
// the loops common to the two statements (the paper, Section 2).
//
// Scalars are analyzed with the reaching-definitions / upward-exposed-uses
// dataflow from internal/dataflow, split into loop-independent and
// loop-carried dependences by re-running the analysis on the acyclic
// (back-edge-free) flow graph. Array references are analyzed pairwise with
// classical subscript tests (ZIV, strong SIV, and a GCD fallback), producing
// per-level direction sets.
package dep

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataflow"
	"repro/ir"
)

// Kind is the dependence type.
type Kind int

const (
	Flow Kind = iota
	Anti
	Output
	Control
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	case Control:
		return "control"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DirSet is a set of possible directions at one loop level, a bitmask over
// {<, =, >}.
type DirSet uint8

const (
	DirLT  DirSet = 1 << iota // source iteration earlier (forward, '<')
	DirEQ                     // same iteration ('=')
	DirGT                     // source iteration later (backward, '>')
	DirAny = DirLT | DirEQ | DirGT
)

// Has reports whether d includes dir.
func (d DirSet) Has(dir DirSet) bool { return d&dir != 0 }

// Intersect returns the intersection.
func (d DirSet) Intersect(o DirSet) DirSet { return d & o }

// Reverse maps each direction to its opposite (swap of source and sink).
func (d DirSet) Reverse() DirSet {
	var r DirSet
	if d.Has(DirLT) {
		r |= DirGT
	}
	if d.Has(DirGT) {
		r |= DirLT
	}
	if d.Has(DirEQ) {
		r |= DirEQ
	}
	return r
}

func (d DirSet) String() string {
	switch d {
	case DirAny:
		return "*"
	case DirLT:
		return "<"
	case DirEQ:
		return "="
	case DirGT:
		return ">"
	case 0:
		return "∅"
	}
	var b strings.Builder
	if d.Has(DirLT) {
		b.WriteByte('<')
	}
	if d.Has(DirEQ) {
		b.WriteByte('=')
	}
	if d.Has(DirGT) {
		b.WriteByte('>')
	}
	return b.String()
}

// Vector is a direction vector: one DirSet per common loop, outermost first.
// A nil/empty vector means the statements share no loop (loop-independent
// dependence at nesting level zero).
type Vector []DirSet

func (v Vector) String() string {
	if len(v) == 0 {
		return "()"
	}
	parts := make([]string, len(v))
	for i, d := range v {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector { return append(Vector{}, v...) }

// Matches reports whether this dependence vector is compatible with a
// requested pattern, where each pattern element is a DirSet (use DirAny for
// the paper's '*'). An empty pattern (direction vector omitted in the
// specification) matches any vector. When the lengths differ the shorter
// side is padded: a dependence vector extends with '=' (the dependence is
// loop-independent with respect to loops it is not carried by — this is
// what lets the paper write flow_dep(Si, Sj, (=)) for statements at any
// nesting depth), and a pattern extends with '*' (unconstrained inner
// levels).
func (v Vector) Matches(pattern Vector) bool {
	if len(pattern) == 0 {
		return true
	}
	n := len(v)
	if len(pattern) > n {
		n = len(pattern)
	}
	for i := 0; i < n; i++ {
		ve, pe := DirEQ, DirAny
		if i < len(v) {
			ve = v[i]
		}
		if i < len(pattern) {
			pe = pattern[i]
		}
		if ve.Intersect(pe) == 0 {
			return false
		}
	}
	return true
}

// Dependence is one edge of the dependence graph: Src δ Dst.
type Dependence struct {
	Kind Kind
	Src  *ir.Stmt
	Dst  *ir.Stmt
	// Vec has one entry per loop common to Src and Dst, outermost first.
	Vec Vector
	// Var is the variable (scalar or array name) causing the dependence;
	// empty for control dependences.
	Var string
	// SrcPos / DstPos are the operand positions involved at each end
	// (the paper's optional (S, pos) result); 0 when not applicable
	// (e.g. subscript uses or control dependences).
	SrcPos int
	DstPos int
	// Carried reports a loop-carried dependence (some level is not '=').
	Carried bool
	// Level is the carrying loop level (1 = outermost common loop);
	// 0 for loop-independent dependences.
	Level int
}

func (d Dependence) String() string {
	return fmt.Sprintf("%s_dep(S%d → S%d, %s, %s)", d.Kind, d.Src.ID, d.Dst.ID, d.Var, d.Vec)
}

// Graph is the dependence graph of one program snapshot. It is invalidated
// by transformation; recompute after each applied optimization (the paper's
// interface offers the same choice).
type Graph struct {
	Prog *ir.Program
	Deps []Dependence

	// Entry is a synthetic statement standing for the implicit
	// zero-initialization of every scalar at program entry. A flow
	// dependence Entry → S marks a possibly-uninitialized use: the value
	// read at S is not always produced by an explicit definition, so
	// single-reaching-definition reasoning (constant and copy propagation)
	// must treat Entry as another reaching definition. Entry is not part
	// of the program's statement list.
	Entry *ir.Stmt

	// flow retains the underlying dataflow analysis (liveness etc.) for
	// clients such as the benefit estimator. It is dropped by incremental
	// updates and recomputed lazily on the next Dataflow call.
	flow *dataflow.Analysis

	// Query index, rebuilt by normalize. from/to hold edge indices by
	// statement position (slot 0 is Entry), byKind holds them per dependence
	// kind, and index buckets the exact (kind, src, dst) triples under a
	// packed integer key. A deleted statement also resolves to slot 0, so
	// every consumer re-checks endpoint identity while filtering.
	from   [][]int32
	to     [][]int32
	byKind [numKinds][]int32
	index  map[uint64][]int32

	// arrays names every array accessed by the program, so lookup counters
	// can classify data edges as scalar or array. Filled by arrayDeps.
	arrays map[string]bool

	// scratch is the spare edge buffer normalize ping-pongs with Deps, so
	// the per-application canonicalization does not allocate a fresh slice
	// every time.
	scratch []Dependence
	// stats counts this graph's query and maintenance traffic. Plain (not
	// atomic) counters: a Graph, like a Program, is not safe for concurrent
	// use, and each fixpoint pass owns its graph.
	stats Stats

	// workers, when > 1, lets the heavy phases of Compute/Update — the
	// per-name dataflow re-analysis and the pairwise array subscript
	// tests — fan out over the par pool. The edge SET is identical either
	// way and normalize imposes a total canonical order, so the resulting
	// graph is byte-identical to a sequential build. Set via SetWorkers.
	workers int
}

// Stats counts a graph's query and maintenance traffic. Lookups count the
// candidate edges Query/Exists examined, classified by the edge: control
// dependences, data dependences on array locations, and data dependences
// on scalars. Updates count how the graph was refreshed after program
// edits: in place from the change journal (incremental) or by the
// structural fallback's full recomputation.
type Stats struct {
	ScalarLookups      int64
	ArrayLookups       int64
	ControlLookups     int64
	IncrementalUpdates int64
	StructuralRebuilds int64
}

// Add returns the element-wise sum.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		ScalarLookups:      s.ScalarLookups + o.ScalarLookups,
		ArrayLookups:       s.ArrayLookups + o.ArrayLookups,
		ControlLookups:     s.ControlLookups + o.ControlLookups,
		IncrementalUpdates: s.IncrementalUpdates + o.IncrementalUpdates,
		StructuralRebuilds: s.StructuralRebuilds + o.StructuralRebuilds,
	}
}

// Sub returns the element-wise difference (for phase deltas).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		ScalarLookups:      s.ScalarLookups - o.ScalarLookups,
		ArrayLookups:       s.ArrayLookups - o.ArrayLookups,
		ControlLookups:     s.ControlLookups - o.ControlLookups,
		IncrementalUpdates: s.IncrementalUpdates - o.IncrementalUpdates,
		StructuralRebuilds: s.StructuralRebuilds - o.StructuralRebuilds,
	}
}

// Stats returns the graph's traffic counters (monotonic over the graph's
// lifetime; recomputations do not reset them).
func (g *Graph) Stats() Stats { return g.stats }

// AddStats folds a delta (typically a worker shadow's traffic) into the
// graph's counters.
func (g *Graph) AddStats(s Stats) { g.stats = g.stats.Add(s) }

// SetWorkers sets how many goroutines Compute/Update may use for the
// dependence derivation itself (n <= 1 keeps everything sequential). The
// graph stays single-owner: parallelism is internal to one maintenance
// call and the result is identical to the sequential build.
func (g *Graph) SetWorkers(n int) { g.workers = n }

// Shadow returns a read-only view of the graph for a concurrent search
// worker: it shares the edge slices and query index (immutable while no
// mutation runs) but carries private, zeroed stats so workers never race on
// the counters. The caller merges each shadow's Stats back with AddStats
// once the parallel section ends. Shadows must not be used across a
// program mutation or an Update/Compute on the parent.
func (g *Graph) Shadow() *Graph {
	s := *g
	s.stats = Stats{}
	return &s
}

// countLookup classifies one examined candidate edge.
func (g *Graph) countLookup(d *Dependence) {
	switch {
	case d.Kind == Control:
		g.stats.ControlLookups++
	case g.arrays[d.Var]:
		g.stats.ArrayLookups++
	default:
		g.stats.ScalarLookups++
	}
}

// numKinds is the number of Kind values (Flow..Control).
const numKinds = 4

// slot maps a statement to its adjacency index: position+1, with 0 for the
// synthetic Entry statement (and for statements not in the program).
func (g *Graph) slot(s *ir.Stmt) int {
	if s == g.Entry {
		return 0
	}
	return g.Prog.Index(s) + 1
}

// key packs an exact (kind, src, dst) query into one integer. Positions fit
// in 28 bits each; programs are nowhere near that size.
func (g *Graph) key(kind Kind, src, dst *ir.Stmt) uint64 {
	return uint64(kind)<<56 | uint64(g.slot(src))<<28 | uint64(g.slot(dst))
}

// Dataflow returns the dataflow analysis for the current snapshot, computing
// it on demand when an incremental update invalidated the cached one.
func (g *Graph) Dataflow() *dataflow.Analysis {
	if g.flow == nil {
		g.flow = dataflow.Analyze(g.Prog)
	}
	return g.flow
}

// Compute builds the full dependence graph for p.
func Compute(p *ir.Program) *Graph {
	g := &Graph{Prog: p, Entry: &ir.Stmt{Kind: ir.SAssign}}
	g.recompute()
	return g
}

// recompute rebuilds the whole graph in place, preserving the Entry
// statement's identity so existing bindings to it stay valid.
func (g *Graph) recompute() {
	p := g.Prog
	g.Deps = g.Deps[:0]
	g.resetMaps()
	g.arrays = make(map[string]bool)
	lt := buildLoopTable(p)
	a := dataflow.Analyze(p)
	g.flow = a
	g.scalarDepsFrom(a, lt)
	g.arrayDeps(lt, nil)
	g.controlDeps()
	g.normalize()
}

func (g *Graph) resetMaps() {
	n := g.Prog.Len() + 1
	// Reuse the adjacency backing and the index map's buckets when
	// possible: resetMaps runs once per incremental update, and the
	// allocations otherwise dominate its cost.
	if cap(g.from) >= n && cap(g.to) >= n && g.index != nil {
		g.from = g.from[:n]
		g.to = g.to[:n]
		for i := 0; i < n; i++ {
			g.from[i] = g.from[i][:0]
			g.to[i] = g.to[i][:0]
		}
		clear(g.index)
	} else {
		g.from = make([][]int32, n)
		g.to = make([][]int32, n)
		g.index = make(map[uint64][]int32, len(g.Deps))
	}
	for k := range g.byKind {
		g.byKind[k] = g.byKind[k][:0]
	}
}

func (g *Graph) add(d Dependence) {
	if d.Src == nil || d.Dst == nil {
		return
	}
	// Deduplicate identical edges (same kind/ends/var/vector): the exact
	// (kind, src, dst) index bucket holds every candidate duplicate.
	for _, di := range g.index[g.key(d.Kind, d.Src, d.Dst)] {
		e := &g.Deps[di]
		if e.Src == d.Src && e.Dst == d.Dst &&
			e.Var == d.Var && e.SrcPos == d.SrcPos && e.DstPos == d.DstPos && vecEqual(e.Vec, d.Vec) {
			return
		}
	}
	idx := len(g.Deps)
	g.Deps = append(g.Deps, d)
	g.link(idx, d)
}

// link registers edge idx in the adjacency lists and the query index.
func (g *Graph) link(idx int, d Dependence) {
	si, di := g.slot(d.Src), g.slot(d.Dst)
	g.from[si] = append(g.from[si], int32(idx))
	g.to[di] = append(g.to[di], int32(idx))
	g.byKind[d.Kind] = append(g.byKind[d.Kind], int32(idx))
	k := g.key(d.Kind, d.Src, d.Dst)
	g.index[k] = append(g.index[k], int32(idx))
}

// normalize sorts the edge list into a canonical order and rebuilds the
// adjacency and query indexes. Both Compute and Update finish with
// normalize, so an incrementally maintained graph is identical — edge order
// included — to a freshly computed one, which keeps candidate enumeration
// deterministic and makes the differential tests exact.
func (g *Graph) normalize() { g.normalizeFrom(0) }

// normalizeFrom is normalize knowing the first n edges are already in
// canonical relative order: it sorts only the suffix and merges the two
// runs. Update passes the kept-edge count — the expensive full sort then
// runs only over the handful of freshly derived edges. normalizeFrom(0)
// is a plain full sort.
func (g *Graph) normalizeFrom(n int) {
	m := len(g.Deps)
	if n > m {
		n = m
	}
	// The comparator is a total order on distinct edges (add() dedups exact
	// duplicates), so sorting an index permutation and permuting once is
	// equivalent to a stable sort of the edge structs — and much cheaper:
	// the sort swaps ints instead of 100-byte structs through reflection.
	idx := make([]int32, m-n)
	for i := range idx {
		idx[i] = int32(n + i)
	}
	sort.Slice(idx, func(x, y int) bool {
		return g.less(&g.Deps[idx[x]], &g.Deps[idx[y]])
	})
	if cap(g.scratch) < m {
		g.scratch = make([]Dependence, 0, m+m/2)
	}
	out := g.scratch[:0]
	i, j := 0, 0
	for i < n && j < len(idx) {
		if g.less(&g.Deps[idx[j]], &g.Deps[i]) {
			out = append(out, g.Deps[idx[j]])
			j++
		} else {
			out = append(out, g.Deps[i])
			i++
		}
	}
	out = append(out, g.Deps[i:n]...)
	for ; j < len(idx); j++ {
		out = append(out, g.Deps[idx[j]])
	}
	g.scratch = g.Deps[:0]
	g.Deps = out
	g.resetMaps()
	for i, d := range g.Deps {
		g.link(i, d)
	}
}

// less is the canonical edge order: a strict total order on the distinct
// edges add() admits, anchored at statement positions (Entry first).
func (g *Graph) less(a, b *Dependence) bool {
	p := g.Prog
	pos := func(s *ir.Stmt) int {
		if s == g.Entry {
			return -1
		}
		return p.Index(s)
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if ai, bi := pos(a.Src), pos(b.Src); ai != bi {
		return ai < bi
	}
	if ai, bi := pos(a.Dst), pos(b.Dst); ai != bi {
		return ai < bi
	}
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	if a.SrcPos != b.SrcPos {
		return a.SrcPos < b.SrcPos
	}
	if a.DstPos != b.DstPos {
		return a.DstPos < b.DstPos
	}
	if a.Level != b.Level {
		return a.Level < b.Level
	}
	if a.Carried != b.Carried {
		return !a.Carried
	}
	if len(a.Vec) != len(b.Vec) {
		return len(a.Vec) < len(b.Vec)
	}
	for k := range a.Vec {
		if a.Vec[k] != b.Vec[k] {
			return a.Vec[k] < b.Vec[k]
		}
	}
	return false
}

func vecEqual(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// From returns the dependences emanating from s.
func (g *Graph) From(s *ir.Stmt) []Dependence {
	var out []Dependence
	for _, i := range g.from[g.slot(s)] {
		if d := g.Deps[i]; d.Src == s {
			out = append(out, d)
		}
	}
	return out
}

// To returns the dependences terminating at s.
func (g *Graph) To(s *ir.Stmt) []Dependence {
	var out []Dependence
	for _, i := range g.to[g.slot(s)] {
		if d := g.Deps[i]; d.Dst == s {
			out = append(out, d)
		}
	}
	return out
}

// candidates returns the tightest index bucket covering a (kind, src, dst)
// query with nil wildcards. Callers must still filter: adjacency and
// per-kind buckets over-approximate, and slot 0 conflates Entry with
// statements no longer in the program.
func (g *Graph) candidates(kind Kind, src, dst *ir.Stmt) []int32 {
	switch {
	case src != nil && dst != nil:
		return g.index[g.key(kind, src, dst)]
	case src != nil:
		return g.from[g.slot(src)]
	case dst != nil:
		return g.to[g.slot(dst)]
	default:
		return g.byKind[kind]
	}
}

func (g *Graph) matches(d *Dependence, kind Kind, src, dst *ir.Stmt, pattern Vector) bool {
	return d.Kind == kind &&
		(src == nil || d.Src == src) &&
		(dst == nil || d.Dst == dst) &&
		d.Vec.Matches(pattern)
}

// Query returns all dependences of the given kind between src and dst
// matching the direction pattern. Either src or dst may be nil as a
// wildcard. This is the paper's dep routine (Fig. 7) generalized to return
// the full match set; the engine layers the LST/IF search modes on top. An
// exact query resolves to one hash bucket; wildcard forms scan the matching
// statement's adjacency list or the per-kind list, never the whole graph.
func (g *Graph) Query(kind Kind, src, dst *ir.Stmt, pattern Vector) []Dependence {
	var out []Dependence
	for _, i := range g.candidates(kind, src, dst) {
		d := &g.Deps[i]
		g.countLookup(d)
		if g.matches(d, kind, src, dst, pattern) {
			out = append(out, *d)
		}
	}
	return out
}

// Exists reports whether any dependence matches the query. Unlike Query it
// allocates nothing and stops at the first match.
func (g *Graph) Exists(kind Kind, src, dst *ir.Stmt, pattern Vector) bool {
	for _, i := range g.candidates(kind, src, dst) {
		d := &g.Deps[i]
		g.countLookup(d)
		if g.matches(d, kind, src, dst, pattern) {
			return true
		}
	}
	return false
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, d := range g.Deps {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
