package dep

import (
	"repro/internal/par"
	"repro/ir"
)

// access is one array reference in a statement: a read or a write.
type access struct {
	stmt    *ir.Stmt
	op      ir.Operand // the ArrayRef operand
	isWrite bool
	pos     int // operand position (paper numbering); 1 for writes
}

// arrayDeps computes flow/anti/output dependences between array accesses
// using subscript tests on the affine subscript expressions:
//
//   - per-dimension strong SIV (a*i + c1 vs a*i + c2) gives an exact
//     distance and thus a single direction for that loop;
//   - ZIV (no index variables) proves or disproves the dimension;
//   - everything else falls back to a GCD test, which either disproves the
//     dependence or leaves all directions possible.
//
// Direction vectors with a leading '>' describe the reversed dependence and
// are discovered when the symmetric ordered pair is processed, so only '='
// and leading-'<' vectors are emitted here.
//
// A non-nil filter restricts the pass to the named arrays (the incremental
// updater's dirty-name set); nil analyzes every array.
func (g *Graph) arrayDeps(lt *loopTable, filter map[string]bool) {
	byName, names := g.collectArrayGroups(filter)
	if g.workers > 1 && len(names) > 1 {
		// Fan the per-array pair tests out over the pool: one array's tests
		// never look at another array's accesses, so sharding the name list
		// and buffering each shard's edges produces the same edge set; the
		// canonical sort in normalize erases the insertion order.
		shards := g.workers
		if shards > len(names) {
			shards = len(names)
		}
		bufs := par.Map(shards, g.workers, func(sh int) []Dependence {
			var buf []Dependence
			emit := func(d Dependence) { buf = append(buf, d) }
			for i := sh; i < len(names); i += shards {
				g.pairTests(byName[names[i]], lt, emit)
			}
			return buf
		})
		for _, buf := range bufs {
			for _, d := range buf {
				g.add(d)
			}
		}
		return
	}
	// Deterministic order: the dependence list's order feeds candidate
	// enumeration and therefore the cost experiments.
	for _, name := range names {
		g.pairTests(byName[name], lt, g.add)
	}
}

// collectArrayGroups gathers every array access, records the array-name
// census (g.arrays), and returns the filtered per-array access groups
// with a deterministic name order.
func (g *Graph) collectArrayGroups(filter map[string]bool) (map[string][]access, []string) {
	accesses := collectAccesses(g.Prog)
	byName := make(map[string][]access)
	var names []string
	if g.arrays == nil {
		g.arrays = make(map[string]bool)
	}
	for _, ac := range accesses {
		// Record every array name — filtered ones included — so lookup
		// counters can classify edges kept from before this update.
		g.arrays[ac.op.Name] = true
		if filter != nil && !filter[ac.op.Name] {
			continue
		}
		if _, seen := byName[ac.op.Name]; !seen {
			names = append(names, ac.op.Name)
		}
		byName[ac.op.Name] = append(byName[ac.op.Name], ac)
	}
	return byName, names
}

// pairTests runs the subscript tests over every ordered pair of one
// array's accesses, emitting the resulting dependences.
func (g *Graph) pairTests(group []access, lt *loopTable, emit func(Dependence)) {
	for _, src := range group {
		for _, dst := range group {
			kind, ok := pairKind(src, dst)
			if !ok {
				continue
			}
			g.testPair(kind, src, dst, lt, emit)
		}
	}
}

func pairKind(src, dst access) (Kind, bool) {
	switch {
	case src.isWrite && !dst.isWrite:
		return Flow, true
	case !src.isWrite && dst.isWrite:
		return Anti, true
	case src.isWrite && dst.isWrite:
		if src.stmt == dst.stmt && src.pos == dst.pos {
			return Output, false // the same single store
		}
		return Output, true
	}
	return 0, false // read-read: no dependence
}

func collectAccesses(p *ir.Program) []access {
	var out []access
	for _, s := range p.Stmts() {
		if (s.Kind == ir.SAssign || s.Kind == ir.SRead) && s.Dst.IsArray() {
			out = append(out, access{stmt: s, op: s.Dst, isWrite: true, pos: 1})
		}
		for slot := 1; slot <= 3+len(s.Args); slot++ {
			opp := s.OperandSlot(slot)
			if opp == nil || !opp.IsArray() {
				continue
			}
			if (s.Kind == ir.SAssign || s.Kind == ir.SRead) && slot == 1 {
				continue // the write, already recorded
			}
			out = append(out, access{stmt: s, op: *opp, isWrite: false, pos: slot})
		}
	}
	return out
}

// testPair runs the subscript tests for one ordered access pair and emits
// the resulting dependences.
func (g *Graph) testPair(kind Kind, src, dst access, lt *loopTable, emit func(Dependence)) {
	p := g.Prog
	common := lt.common(p.Index(src.stmt), p.Index(dst.stmt))
	n := len(common)
	lcvAt := make(map[string]int, n) // LCV name → level (0-based)
	for k, l := range common {
		lcvAt[l.LCV()] = k
	}

	dirs := make([]DirSet, n)
	for i := range dirs {
		dirs[i] = DirAny
	}
	bounds := loopBounds(common, lcvAt)
	dims := len(src.op.Subs)
	if len(dst.op.Subs) < dims {
		dims = len(dst.op.Subs)
	}
	for d := 0; d < dims; d++ {
		if !constrainDim(src.op.Subs[d], dst.op.Subs[d], lcvAt, bounds, dirs) {
			return // this dimension proves independence
		}
	}

	srcIdx, dstIdx := p.Index(src.stmt), p.Index(dst.stmt)

	// Loop-independent dependence: all levels admit '=' and the source is
	// lexically (and thus execution-order, within one iteration) first.
	allEq := true
	for _, ds := range dirs {
		if !ds.Has(DirEQ) {
			allEq = false
			break
		}
	}
	sameStore := src.stmt == dst.stmt && src.pos == dst.pos
	if allEq && srcIdx < dstIdx && !sameStore {
		emit(Dependence{
			Kind: kind, Src: src.stmt, Dst: dst.stmt, Var: src.op.Name,
			Vec: eqVector(n), SrcPos: src.pos, DstPos: dst.pos,
		})
	}
	// Within-statement loop-independent anti dependence (read then write in
	// the same statement instance, e.g. a(i) = a(i) + 1) is execution-order
	// trivial and conventionally not recorded.

	// Loop-carried dependences at each level with a '<' direction.
	for k := 0; k < n; k++ {
		ok := dirs[k].Has(DirLT)
		for j := 0; j < k && ok; j++ {
			ok = dirs[j].Has(DirEQ)
		}
		if !ok {
			continue
		}
		vec := make(Vector, n)
		for j := range vec {
			switch {
			case j < k:
				vec[j] = DirEQ
			case j == k:
				vec[j] = DirLT
			default:
				vec[j] = dirs[j]
			}
		}
		emit(Dependence{
			Kind: kind, Src: src.stmt, Dst: dst.stmt, Var: src.op.Name,
			Vec: vec, SrcPos: src.pos, DstPos: dst.pos,
			Carried: true, Level: k + 1,
		})
	}
}

// loopBounds extracts the iteration-value range of each constant-bound
// common loop (level → [min, max]), the information the Banerjee and
// weak-SIV tests consume.
func loopBounds(common []ir.Loop, lcvAt map[string]int) map[int][2]int64 {
	out := map[int][2]int64{}
	for _, l := range common {
		k, ok := lcvAt[l.LCV()]
		if !ok {
			continue
		}
		h := l.Head
		if !h.Init.IsConst() || !h.Final.IsConst() {
			continue
		}
		lo, hi := h.Init.Val.AsInt(), h.Final.Val.AsInt()
		if lo > hi {
			lo, hi = hi, lo
		}
		out[k] = [2]int64{lo, hi}
	}
	return out
}

// constrainDim intersects the direction sets with the constraints from one
// subscript dimension (equation f(I) = g(I')). It returns false when the
// dimension proves there is no dependence. bounds carries the known
// iteration ranges per level for the Banerjee-style interval test.
func constrainDim(f, gexp ir.LinExpr, lcvAt map[string]int, bounds map[int][2]int64, dirs []DirSet) bool {
	f = f.Normalize()
	gexp = gexp.Normalize()

	// Split both sides into common-loop index terms and symbolic terms.
	type coefs struct{ src, dst int64 }
	loopCoef := map[int]*coefs{}
	symDiff := map[string]int64{} // src coef − dst coef for non-index symbols
	for _, t := range f.Terms {
		if k, ok := lcvAt[t.Var]; ok {
			if loopCoef[k] == nil {
				loopCoef[k] = &coefs{}
			}
			loopCoef[k].src += t.Coef
		} else {
			symDiff[t.Var] += t.Coef
		}
	}
	for _, t := range gexp.Terms {
		if k, ok := lcvAt[t.Var]; ok {
			if loopCoef[k] == nil {
				loopCoef[k] = &coefs{}
			}
			loopCoef[k].dst += t.Coef
		} else {
			symDiff[t.Var] -= t.Coef
		}
	}
	// Loop-invariant symbols appearing with equal coefficients on both
	// sides cancel (the classical assumption); any remaining symbolic term
	// makes the dimension inconclusive — no constraint.
	for _, c := range symDiff {
		if c != 0 {
			return true
		}
	}
	cdiff := f.Const - gexp.Const // f + cdiff*0: equation Σ a·i − Σ b·i' = −cdiff

	// ZIV: no loop terms at all.
	live := 0
	for _, c := range loopCoef {
		if c.src != 0 || c.dst != 0 {
			live++
		}
	}
	if live == 0 {
		return cdiff == 0
	}

	// Strong SIV: exactly one loop level involved, equal coefficients.
	if live == 1 {
		for k, c := range loopCoef {
			if c.src == 0 && c.dst == 0 {
				continue
			}
			if c.src == c.dst && c.src != 0 {
				// a·i + cf = a·i′ + cg  ⇒  i′ − i = (cf − cg)/a = cdiff/a.
				if cdiff%c.src != 0 {
					return false
				}
				delta := cdiff / c.src
				// With known bounds, a distance beyond the iteration span
				// can never be realized.
				if b, ok := bounds[k]; ok && abs(delta) > b[1]-b[0] {
					return false
				}
				switch {
				case delta > 0:
					dirs[k] = dirs[k].Intersect(DirLT)
				case delta == 0:
					dirs[k] = dirs[k].Intersect(DirEQ)
				default:
					dirs[k] = dirs[k].Intersect(DirGT)
				}
				return dirs[k] != 0
			}
			// Weak-zero SIV: one side does not move with the loop
			// (a·i + cf = cg): the moving side must hit one exact
			// iteration value.
			if (c.src == 0) != (c.dst == 0) {
				var i0 int64
				switch {
				case c.src != 0: // a·i + cf = cg  ⇒  i = −cdiff/a
					if cdiff%c.src != 0 {
						return false
					}
					i0 = -cdiff / c.src
				default: // cf = b·i′ + cg  ⇒  i′ = cdiff/b
					if cdiff%c.dst != 0 {
						return false
					}
					i0 = cdiff / c.dst
				}
				if b, ok := bounds[k]; ok && (i0 < b[0] || i0 > b[1]) {
					return false
				}
				// Directions stay unconstrained (the fixed side pairs with
				// every iteration of the moving side).
				return true
			}
			// Weak-crossing SIV and the rest: fall through to the general
			// tests below.
		}
	}

	// GCD test over all loop coefficients (src and dst sides separately).
	var g int64
	for _, c := range loopCoef {
		g = gcd(g, abs(c.src))
		g = gcd(g, abs(c.dst))
	}
	if g != 0 && cdiff%g != 0 {
		return false
	}

	// Banerjee interval test: the equation Σ a·i − Σ b·i′ + cdiff = 0 has
	// no solution when the left side's interval over the known iteration
	// ranges excludes zero. Levels without known bounds make the interval
	// unbounded on the affected side.
	lo, hi := cdiff, cdiff
	bounded := true
	for k, c := range loopCoef {
		b, ok := bounds[k]
		if !ok {
			if c.src != 0 || c.dst != 0 {
				bounded = false
				break
			}
			continue
		}
		for _, coef := range []int64{c.src, -c.dst} {
			if coef == 0 {
				continue
			}
			x, y := coef*b[0], coef*b[1]
			if x > y {
				x, y = y, x
			}
			lo += x
			hi += y
		}
	}
	if bounded && (lo > 0 || hi < 0) {
		return false
	}
	return true
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
