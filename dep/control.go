package dep

import "repro/ir"

// controlDeps records control dependences: per the paper, "if Si is an IF
// condition then all of the statements within the THEN and the ELSE are
// control dependent on Si"; analogously every statement in a loop body is
// control dependent on the loop header (whether the body executes depends
// on the header's trip test).
func (g *Graph) controlDeps() {
	p := g.Prog
	for _, s := range p.Stmts() {
		switch s.Kind {
		case ir.SIf:
			_, endif := ir.MatchingEndIf(p, s)
			if endif == nil {
				continue
			}
			for i := p.Index(s) + 1; i < p.Index(endif); i++ {
				t := p.At(i)
				if t.Kind == ir.SElse {
					continue
				}
				g.add(Dependence{Kind: Control, Src: s, Dst: t})
			}
		case ir.SDoHead:
			end := ir.MatchingEnd(p, s)
			if end == nil {
				continue
			}
			for i := p.Index(s) + 1; i < p.Index(end); i++ {
				g.add(Dependence{Kind: Control, Src: s, Dst: p.At(i)})
			}
		}
	}
}
