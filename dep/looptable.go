package dep

import "repro/ir"

// loopTable caches the loop and control nesting of every statement of one
// program snapshot, built with two linear scans. It replaces the per-pair
// ir.CommonLoops calls (each of which rescanned the whole program) on the
// dependence construction hot path.
type loopTable struct {
	// enclosing[i] lists the DO loops strictly containing statement i,
	// outermost first.
	enclosing [][]ir.Loop
	// ctrlHeads[i] lists the SIf/SDoHead statements whose region strictly
	// contains statement i, outermost first.
	ctrlHeads [][]*ir.Stmt
}

func buildLoopTable(p *ir.Program) *loopTable {
	n := p.Len()
	t := &loopTable{
		enclosing: make([][]ir.Loop, n),
		ctrlHeads: make([][]*ir.Stmt, n),
	}

	// Pass 1: match every DO head with its ENDDO.
	ends := make(map[*ir.Stmt]*ir.Stmt)
	var headStack []*ir.Stmt
	for i := 0; i < n; i++ {
		s := p.At(i)
		switch s.Kind {
		case ir.SDoHead:
			headStack = append(headStack, s)
		case ir.SDoEnd:
			if len(headStack) > 0 {
				ends[headStack[len(headStack)-1]] = s
				headStack = headStack[:len(headStack)-1]
			}
		}
	}

	// Pass 2: record the open loop and control stacks at each statement.
	// A head/end statement is not inside its own region, matching
	// ir.EnclosingLoops and the control-dependence rule.
	var loops []ir.Loop
	var ctrl []*ir.Stmt
	for i := 0; i < n; i++ {
		s := p.At(i)
		switch s.Kind {
		case ir.SDoEnd:
			if len(loops) > 0 {
				loops = loops[:len(loops)-1]
			}
			if len(ctrl) > 0 {
				ctrl = ctrl[:len(ctrl)-1]
			}
		case ir.SEndIf:
			if len(ctrl) > 0 {
				ctrl = ctrl[:len(ctrl)-1]
			}
		}
		t.enclosing[i] = append([]ir.Loop(nil), loops...)
		t.ctrlHeads[i] = append([]*ir.Stmt(nil), ctrl...)
		switch s.Kind {
		case ir.SDoHead:
			if end, ok := ends[s]; ok {
				loops = append(loops, ir.Loop{Head: s, End: end})
				ctrl = append(ctrl, s)
			}
		case ir.SIf:
			ctrl = append(ctrl, s)
		}
	}
	return t
}

// at returns the loops enclosing statement index i, outermost first.
func (t *loopTable) at(i int) []ir.Loop {
	if i < 0 || i >= len(t.enclosing) {
		return nil
	}
	return t.enclosing[i]
}

// common returns the loops enclosing both statement indices, outermost
// first. In a structured program the enclosing-loop lists of two statements
// share their common loops as a prefix.
func (t *loopTable) common(ai, bi int) []ir.Loop {
	a, b := t.at(ai), t.at(bi)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	k := 0
	for k < n && a[k].Head == b[k].Head {
		k++
	}
	return a[:k]
}
