package dep

import (
	"testing"

	"repro/internal/frontend"
)

// statsProgram mixes scalar flow, an array-carried dependence inside a loop,
// and control dependence under an IF, so queries can hit all three lookup
// classes.
const statsSrc = `
PROGRAM stats
INTEGER n, i, x
REAL a(16)
n = 16
x = n + 1
DO i = 2, n
  a(i) = a(i-1) + 1.0
ENDDO
IF (x > 0) THEN
  x = x - 1
ENDIF
PRINT x
END
`

// TestStatsLookupClassification: Query/Exists count each examined candidate
// edge exactly once, classified scalar/array/control by the dependence
// variable.
func TestStatsLookupClassification(t *testing.T) {
	p := frontend.MustParse(statsSrc)
	g := Compute(p)
	if got := g.Stats(); got != (Stats{}) {
		t.Fatalf("fresh graph has non-zero stats: %+v", got)
	}

	// A wildcard query walks every edge: the per-kind lookup counts must sum
	// to the number of edges examined and each class must be represented in
	// this program.
	_ = g.Query(Flow, nil, nil, nil)
	st := g.Stats()
	if st.ScalarLookups == 0 {
		t.Errorf("scalar lookups = 0: %+v", st)
	}
	if st.ArrayLookups == 0 {
		t.Errorf("array lookups = 0 despite a(i)/a(i-1): %+v", st)
	}
	_ = g.Query(Control, nil, nil, nil)
	st = g.Stats()
	if st.ControlLookups == 0 {
		t.Errorf("control lookups = 0 despite the IF: %+v", st)
	}
	// The kind index bounds each walk: no query may examine more edges than
	// the graph holds, and every examined edge is classified exactly once.
	if total := st.ScalarLookups + st.ArrayLookups + st.ControlLookups; total > 2*int64(len(g.Deps)) {
		t.Errorf("lookup total %d exceeds two index walks over %d deps: %+v", total, len(g.Deps), st)
	}

	// Exists counts the edges it examines too (it may stop early; it must
	// count at least one more on a further match).
	before := g.Stats()
	g.Exists(Flow, nil, nil, nil)
	if got := g.Stats(); got == before {
		t.Errorf("Exists examined no edges: %+v", got)
	}
}

// TestStatsUpdateModes: incremental journal consumption and the structural
// fallback are counted separately, and stats survive a recompute.
func TestStatsUpdateModes(t *testing.T) {
	p := frontend.MustParse(statsSrc)
	log, _ := p.EnsureLog()
	defer log.Detach()
	g := Compute(p)

	// In-place modification: incrementally updatable.
	s := p.At(1) // x = n + 1
	p.NoteModified(s)
	op := s.Op // journal a no-op edit
	s.Op = op
	if !g.Update(log.Changes()) {
		t.Fatal("in-place modify should update incrementally")
	}
	log.Reset()
	st := g.Stats()
	if st.IncrementalUpdates != 1 || st.StructuralRebuilds != 0 {
		t.Fatalf("after incremental update: %+v", st)
	}

	// Structural change: a wholesale replacement (ChangeReset) falls back to
	// a full rebuild, preserving the counters accumulated so far.
	p.CopyFrom(p.Clone())
	if g.Update(log.Changes()) {
		t.Fatal("a program reset should force the structural fallback")
	}
	log.Reset()
	st = g.Stats()
	if st.IncrementalUpdates != 1 || st.StructuralRebuilds != 1 {
		t.Fatalf("after structural rebuild: %+v", st)
	}
}

// TestStatsAddSub: the aggregation helpers are componentwise.
func TestStatsAddSub(t *testing.T) {
	a := Stats{ScalarLookups: 5, ArrayLookups: 2, ControlLookups: 1, IncrementalUpdates: 3, StructuralRebuilds: 1}
	b := Stats{ScalarLookups: 3, ArrayLookups: 1, ControlLookups: 1, IncrementalUpdates: 2}
	sum := a.Add(b)
	if sum.ScalarLookups != 8 || sum.ArrayLookups != 3 || sum.IncrementalUpdates != 5 {
		t.Errorf("Add = %+v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Errorf("Sub = %+v, want %+v", diff, a)
	}
}
