package dep

import (
	"testing"

	"repro/internal/frontend"
	"repro/ir"
)

// find returns dependences of kind between statements with the given IDs
// (0 as wildcard).
func find(g *Graph, kind Kind, srcID, dstID int) []Dependence {
	var out []Dependence
	for _, d := range g.Deps {
		if d.Kind != kind {
			continue
		}
		if srcID != 0 && d.Src.ID != srcID {
			continue
		}
		if dstID != 0 && d.Dst.ID != dstID {
			continue
		}
		out = append(out, d)
	}
	return out
}

func TestDirSetOps(t *testing.T) {
	if !DirAny.Has(DirLT) || !DirAny.Has(DirEQ) || !DirAny.Has(DirGT) {
		t.Fatal("DirAny must include all")
	}
	if DirLT.Reverse() != DirGT || DirGT.Reverse() != DirLT || DirEQ.Reverse() != DirEQ {
		t.Fatal("Reverse broken")
	}
	if (DirLT | DirEQ).Reverse() != (DirGT | DirEQ) {
		t.Fatal("Reverse of sets broken")
	}
	if DirLT.String() != "<" || DirAny.String() != "*" || (DirLT|DirEQ).String() != "<=" {
		t.Fatal("String broken")
	}
}

func TestVectorMatches(t *testing.T) {
	v := Vector{DirLT, DirGT}
	if !v.Matches(Vector{DirLT, DirGT}) {
		t.Error("exact match")
	}
	if !v.Matches(Vector{DirAny, DirGT}) {
		t.Error("* matches")
	}
	if v.Matches(Vector{DirEQ, DirGT}) {
		t.Error("disjoint element must not match")
	}
	if !v.Matches(Vector{DirLT}) {
		t.Error("short pattern pads with '*' and must match")
	}
	if !v.Matches(nil) {
		t.Error("omitted pattern matches anything")
	}
	if !(Vector{}).Matches(nil) {
		t.Error("empty matches empty")
	}
	// A loop-independent (empty) vector pads with '=': it matches (=) but
	// not (<).
	if !(Vector{}).Matches(Vector{DirEQ}) {
		t.Error("empty vector must match (=)")
	}
	if (Vector{}).Matches(Vector{DirLT}) {
		t.Error("empty vector must not match (<)")
	}
	// A level-1-carried vector does not match a longer all-'=' pattern.
	if (Vector{DirLT}).Matches(Vector{DirEQ, DirEQ}) {
		t.Error("carried vector must not match (=,=)")
	}
}

func TestScalarFlowStraightLine(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y, z
x = 5
y = x + 1
z = x + y
END`)
	g := Compute(p)
	s1, s2, s3 := p.At(0), p.At(1), p.At(2)
	if !g.Exists(Flow, s1, s2, nil) {
		t.Error("x: S1 δ S2 missing")
	}
	if !g.Exists(Flow, s1, s3, nil) {
		t.Error("x: S1 δ S3 missing")
	}
	if !g.Exists(Flow, s2, s3, nil) {
		t.Error("y: S2 δ S3 missing")
	}
	if g.Exists(Flow, s2, s1, nil) || g.Exists(Flow, s3, s1, nil) {
		t.Error("no backward flow deps in straight line")
	}
	// Position of the use: z = x + y uses x at position 2, y at position 3.
	dx := g.Query(Flow, s1, s3, nil)
	if len(dx) != 1 || dx[0].DstPos != 2 {
		t.Errorf("use position of x in S3 = %+v", dx)
	}
	dy := g.Query(Flow, s2, s3, nil)
	if len(dy) != 1 || dy[0].DstPos != 3 {
		t.Errorf("use position of y in S3 = %+v", dy)
	}
}

func TestScalarFlowKilled(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 1
x = 2
y = x
END`)
	g := Compute(p)
	if g.Exists(Flow, p.At(0), p.At(2), nil) {
		t.Error("killed definition must not reach")
	}
	if !g.Exists(Flow, p.At(1), p.At(2), nil) {
		t.Error("live definition must reach")
	}
	if !g.Exists(Output, p.At(0), p.At(1), nil) {
		t.Error("output dep between the two defs of x missing")
	}
}

func TestScalarAnti(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
y = x
x = 2
END`)
	g := Compute(p)
	deps := find(g, Anti, p.At(0).ID, p.At(1).ID)
	if len(deps) != 1 {
		t.Fatalf("anti deps = %v", deps)
	}
	if deps[0].Var != "x" || deps[0].SrcPos != 2 {
		t.Errorf("anti dep detail = %+v", deps[0])
	}
}

func TestScalarLoopCarriedReduction(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, s
s = 0
DO i = 1, 10
  s = s + 1
ENDDO
PRINT s
END`)
	g := Compute(p)
	body := p.At(2)
	// s = s + 1: carried flow dep onto itself with direction '<'.
	var carried []Dependence
	for _, d := range find(g, Flow, body.ID, body.ID) {
		if d.Carried {
			carried = append(carried, d)
		}
	}
	if len(carried) != 1 {
		t.Fatalf("carried self flow deps = %v", carried)
	}
	if len(carried[0].Vec) != 1 || !carried[0].Vec[0].Has(DirLT) {
		t.Errorf("vector = %v", carried[0].Vec)
	}
	if carried[0].Level != 1 {
		t.Errorf("level = %d", carried[0].Level)
	}
	// Carried self output dep as well.
	foundOut := false
	for _, d := range find(g, Output, body.ID, body.ID) {
		if d.Carried {
			foundOut = true
		}
	}
	if !foundOut {
		t.Error("carried self output dep missing")
	}
}

func TestScalarNotCarriedWhenKilledFirst(t *testing.T) {
	// t is written before it is read in every iteration: the flow dep is
	// loop-independent only; parallelization is blocked by output/anti but
	// no carried flow should be reported.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10), b(10), t
DO i = 1, 10
  t = a(i)
  b(i) = t
ENDDO
END`)
	g := Compute(p)
	def, use := p.At(1), p.At(2)
	deps := find(g, Flow, def.ID, use.ID)
	for _, d := range deps {
		if d.Carried {
			t.Errorf("spurious carried flow dep: %v", d)
		}
	}
	if len(deps) == 0 {
		t.Fatal("loop-independent flow dep missing")
	}
	if len(deps[0].Vec) != 1 || deps[0].Vec[0] != DirEQ {
		t.Errorf("vector = %v", deps[0].Vec)
	}
}

func TestArrayCarriedFlow(t *testing.T) {
	// a(i) = a(i-1): distance 1 → carried flow with '<'.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10)
DO i = 2, 10
  a(i) = a(i-1) + 1.0
ENDDO
END`)
	g := Compute(p)
	body := p.At(1)
	deps := find(g, Flow, body.ID, body.ID)
	var carried []Dependence
	for _, d := range deps {
		if d.Carried && d.Var == "a" {
			carried = append(carried, d)
		}
	}
	if len(carried) != 1 {
		t.Fatalf("carried array flow = %v (all: %v)", carried, g.Deps)
	}
	if carried[0].Vec[0] != DirLT {
		t.Errorf("direction = %v, want <", carried[0].Vec)
	}
}

func TestArrayCarriedAnti(t *testing.T) {
	// a(i) = a(i+1): read of next element then write → carried anti.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10)
DO i = 1, 9
  a(i) = a(i+1)
ENDDO
END`)
	g := Compute(p)
	body := p.At(1)
	var carried []Dependence
	for _, d := range find(g, Anti, body.ID, body.ID) {
		if d.Carried {
			carried = append(carried, d)
		}
	}
	if len(carried) != 1 {
		t.Fatalf("carried anti = %v (all: %v)", carried, g.Deps)
	}
	if carried[0].Vec[0] != DirLT {
		t.Errorf("anti direction = %v", carried[0].Vec)
	}
	// And no carried flow for this pattern.
	for _, d := range find(g, Flow, body.ID, body.ID) {
		if d.Carried {
			t.Errorf("spurious carried flow: %v", d)
		}
	}
}

func TestArrayIndependentIterations(t *testing.T) {
	// a(i) = b(i): fully parallel, no carried deps at all.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10), b(10)
DO i = 1, 10
  a(i) = b(i)
ENDDO
END`)
	g := Compute(p)
	for _, d := range g.Deps {
		if d.Carried && d.Kind != Control {
			t.Errorf("spurious carried dep: %v", d)
		}
	}
}

func TestArrayZIV(t *testing.T) {
	// a(1) and a(2) never conflict; a(1) and a(1) do.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10), x
DO i = 1, 10
  a(1) = x
  x = a(2)
ENDDO
a(1) = 0.0
END`)
	g := Compute(p)
	s1 := p.At(1) // a(1) = x
	s2 := p.At(2) // x = a(2)
	s4 := p.At(4) // a(1) = 0.0
	if g.Exists(Flow, s1, s2, nil) && func() bool {
		for _, d := range g.Query(Flow, s1, s2, nil) {
			if d.Var == "a" {
				return true
			}
		}
		return false
	}() {
		t.Error("a(1) → a(2) must not be flow dependent (ZIV disproves)")
	}
	if !g.Exists(Output, s1, s4, nil) {
		t.Error("a(1) written twice: output dep missing")
	}
}

func TestArrayInterchangePreventingDep(t *testing.T) {
	// The paper's INX condition: no flow dep with direction (<,>).
	// a(i,j) = a(i-1,j+1) has exactly that pattern.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 2, 10
  DO j = 1, 9
    a(i,j) = a(i-1,j+1)
  ENDDO
ENDDO
END`)
	g := Compute(p)
	body := p.At(2)
	pattern := Vector{DirLT, DirGT}
	var hit []Dependence
	for _, d := range find(g, Flow, body.ID, body.ID) {
		if d.Var == "a" && d.Vec.Matches(pattern) {
			hit = append(hit, d)
		}
	}
	if len(hit) == 0 {
		t.Fatalf("(<,>) flow dep missing; deps: %v", g.Deps)
	}

	// a(i,j) = a(i-1,j) has (<,=) — interchange legal.
	p2 := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 2, 10
  DO j = 1, 10
    a(i,j) = a(i-1,j)
  ENDDO
ENDDO
END`)
	g2 := Compute(p2)
	body2 := p2.At(2)
	for _, d := range find(g2, Flow, body2.ID, body2.ID) {
		if d.Var == "a" && d.Vec.Matches(pattern) {
			t.Errorf("(<,=) dep wrongly matches (<,>): %v", d)
		}
	}
}

func TestArrayGCDDisproof(t *testing.T) {
	// a(2i) = a(2i+1): even vs odd elements never meet (GCD test).
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(30)
DO i = 1, 10
  a(2*i) = a(2*i+1)
ENDDO
END`)
	g := Compute(p)
	for _, d := range g.Deps {
		if d.Var == "a" {
			t.Errorf("GCD should disprove: %v", d)
		}
	}
}

func TestArraySymbolicSubscriptsConservative(t *testing.T) {
	// a(i+k) vs a(i): k symbolic on one side only → assume dependence.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, k
REAL a(30)
READ k
DO i = 1, 10
  a(i+k) = a(i) + 1.0
ENDDO
END`)
	g := Compute(p)
	found := false
	for _, d := range g.Deps {
		if d.Var == "a" && d.Carried {
			found = true
		}
	}
	if !found {
		t.Error("symbolic subscript must be treated conservatively")
	}
}

func TestControlDeps(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
READ x
IF (x > 0) THEN
  y = 1
ELSE
  y = 2
ENDIF
DO x = 1, 3
  y = y + 1
ENDDO
END`)
	g := Compute(p)
	ifs := p.At(1)
	then := p.At(2)
	els := p.At(4)
	if !g.Exists(Control, ifs, then, nil) {
		t.Error("THEN branch control dep missing")
	}
	if !g.Exists(Control, ifs, els, nil) {
		t.Error("ELSE branch control dep missing")
	}
	do := p.At(6)
	body := p.At(7)
	if !g.Exists(Control, do, body, nil) {
		t.Error("loop body control dep missing")
	}
	if g.Exists(Control, ifs, p.At(0), nil) {
		t.Error("statement before IF must not be control dependent")
	}
}

func TestLCVFlowIntoBounds(t *testing.T) {
	// Loop headers invariant check of the INX spec: outer LCV feeding the
	// inner loop's bounds must appear as a flow dep L1.head → L2.head.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 1, i
    a(i,j) = 0.0
  ENDDO
ENDDO
END`)
	g := Compute(p)
	outer, inner := p.At(0), p.At(1)
	if !g.Exists(Flow, outer, inner, nil) {
		t.Fatal("flow dep from outer head to inner head (triangular bound) missing")
	}

	p2 := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 1, 10
    a(i,j) = 0.0
  ENDDO
ENDDO
END`)
	g2 := Compute(p2)
	if g2.Exists(Flow, p2.At(0), p2.At(1), nil) {
		t.Fatal("rectangular loop heads must be independent")
	}
}

func TestQueryWildcardsAndPattern(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 1
y = x
END`)
	g := Compute(p)
	if len(g.Query(Flow, nil, nil, nil)) == 0 {
		t.Error("wildcard query must return deps")
	}
	if len(g.Query(Flow, nil, p.At(1), nil)) != 1 {
		t.Error("dst-anchored query broken")
	}
	if len(g.Query(Flow, p.At(0), nil, nil)) != 1 {
		t.Error("src-anchored query broken")
	}
	if g.Exists(Anti, p.At(0), nil, nil) {
		t.Error("no anti dep expected")
	}
	// A loop-independent dep pads with '=': it matches (=) but not (<).
	if !g.Exists(Flow, p.At(0), p.At(1), Vector{DirEQ}) {
		t.Error("level-0 dep must match a level-1 '=' pattern")
	}
	if g.Exists(Flow, p.At(0), p.At(1), Vector{DirLT}) {
		t.Error("level-0 dep must not match a '<' pattern")
	}
}

func TestDepStringForms(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER x, y\nx = 1\ny = x\nEND")
	g := Compute(p)
	d := g.Query(Flow, p.At(0), p.At(1), nil)[0]
	if d.String() == "" || g.String() == "" {
		t.Error("String must render")
	}
	if got := (Vector{DirLT, DirGT}).String(); got != "(<,>)" {
		t.Errorf("Vector.String = %q", got)
	}
	if got := (Vector{}).String(); got != "()" {
		t.Errorf("empty Vector.String = %q", got)
	}
}

func TestTriangularCarriedDirectionOnInnerLevel(t *testing.T) {
	// a(i,j) = a(i,j-1): carried by the inner loop, (=,<).
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 2, 10
    a(i,j) = a(i,j-1)
  ENDDO
ENDDO
END`)
	g := Compute(p)
	body := p.At(2)
	var carried []Dependence
	for _, d := range find(g, Flow, body.ID, body.ID) {
		if d.Var == "a" && d.Carried {
			carried = append(carried, d)
		}
	}
	if len(carried) != 1 {
		t.Fatalf("carried deps = %v", carried)
	}
	if carried[0].Level != 2 {
		t.Errorf("level = %d, want 2", carried[0].Level)
	}
	want := Vector{DirEQ, DirLT}
	if !vecEqual(carried[0].Vec, want) {
		t.Errorf("vec = %v, want %v", carried[0].Vec, want)
	}
}

func TestSelfOutputOnScalarAssignOutsideLoop(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER x\nx = 1\nEND")
	g := Compute(p)
	for _, d := range g.Deps {
		if d.Kind == Output {
			t.Errorf("no output dep expected: %v", d)
		}
	}
}

func TestDataflowAccessor(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER x\nx = 1\nPRINT x\nEND")
	g := Compute(p)
	if g.Dataflow() == nil {
		t.Fatal("Dataflow accessor must return the analysis")
	}
	if !g.Dataflow().LiveOutOf(0, "x") {
		t.Error("liveness should be available through the graph")
	}
}

func TestLoopIndependentArrayFlowAcrossLoops(t *testing.T) {
	// Producer loop writes a(i); consumer loop reads a(j): flow dep with
	// empty common-loop vector between the two body statements.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(10), b(10)
DO i = 1, 10
  a(i) = 1.0
ENDDO
DO j = 1, 10
  b(j) = a(j)
ENDDO
END`)
	g := Compute(p)
	w := p.At(1)
	r := p.At(4)
	deps := g.Query(Flow, w, r, nil)
	found := false
	for _, d := range deps {
		if d.Var == "a" && len(d.Vec) == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-loop array flow dep missing: %v", g.Deps)
	}
	_ = ir.Loops(p)
}
