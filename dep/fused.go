package dep

import "repro/ir"

// FusedDirections computes the set of directions a data dependence between
// statement s (in loop l1) and statement t (in the adjacent loop l2) would
// have if the two loops were fused, identifying l2's index with l1's. It is
// the dependence test behind loop fusion: a resulting '>' direction means
// iteration i of the fused loop would consume a value that iteration j > i
// produces — fusion would change the program's meaning.
//
// Array accesses are tested with the same subscript machinery as ordinary
// dependences. Any scalar location shared between the two bodies (with at
// least one side writing it) is treated conservatively as admitting every
// direction.
func FusedDirections(p *ir.Program, s, t *ir.Stmt, l1, l2 ir.Loop) DirSet {
	var result DirSet

	// Virtual common loop: l1's LCV at level 0; l2's LCV renamed to it.
	lcvAt := map[string]int{l1.LCV(): 0}
	rename := func(e ir.LinExpr) ir.LinExpr {
		if l2.LCV() == l1.LCV() {
			return e
		}
		return e.Subst(l2.LCV(), ir.VarExpr(l1.LCV()))
	}

	sAcc := accessesOf(s)
	tAcc := accessesOf(t)
	for _, a := range sAcc {
		for _, b := range tAcc {
			if a.op.Name != b.op.Name {
				continue
			}
			if !a.isWrite && !b.isWrite {
				continue
			}
			dirs := []DirSet{DirAny}
			feasible := true
			bounds := loopBounds([]ir.Loop{l1}, lcvAt)
			dims := len(a.op.Subs)
			if len(b.op.Subs) < dims {
				dims = len(b.op.Subs)
			}
			for d := 0; d < dims && feasible; d++ {
				feasible = constrainDim(a.op.Subs[d], rename(b.op.Subs[d]), lcvAt, bounds, dirs)
			}
			if feasible {
				result |= dirs[0]
			}
		}
	}

	// Scalar conflicts: a scalar written in one body and touched in the
	// other can flow either way across fused iterations.
	sw, sr := scalarAccesses(s)
	tw, tr := scalarAccesses(t)
	for v := range sw {
		if tw[v] || tr[v] {
			result |= DirAny
		}
	}
	for v := range tw {
		if sr[v] {
			result |= DirAny
		}
	}
	return result
}

// accessesOf returns the array accesses of one statement.
func accessesOf(s *ir.Stmt) []access {
	var out []access
	if (s.Kind == ir.SAssign || s.Kind == ir.SRead) && s.Dst.IsArray() {
		out = append(out, access{stmt: s, op: s.Dst, isWrite: true, pos: 1})
	}
	for slot := 1; slot <= 3+len(s.Args); slot++ {
		opp := s.OperandSlot(slot)
		if opp == nil || !opp.IsArray() {
			continue
		}
		if (s.Kind == ir.SAssign || s.Kind == ir.SRead) && slot == 1 {
			continue
		}
		out = append(out, access{stmt: s, op: *opp, isWrite: false, pos: slot})
	}
	return out
}

// scalarAccesses returns the scalar names written and read by s. Loop
// control variables only appear in the read sets (body statements do not
// define them), so reading the shared index is never flagged as a conflict.
func scalarAccesses(s *ir.Stmt) (writes, reads map[string]bool) {
	writes = map[string]bool{}
	reads = map[string]bool{}
	if d, ok := s.Defs(); ok && !d.IsArray() {
		writes[d.Name] = true
	}
	for _, v := range s.UsedVars() {
		reads[v] = true
	}
	return writes, reads
}
