package dep

import (
	"math/rand"
	"testing"

	"repro/internal/proggen"
	"repro/ir"
)

// mutNames are the scalar names proggen declares; random modifications draw
// replacement operands from this pool.
var mutNames = []string{"n", "m", "p", "x", "y", "z", "w"}

func assignStmts(p *ir.Program) []*ir.Stmt {
	var out []*ir.Stmt
	for _, s := range p.Stmts() {
		if s.Kind == ir.SAssign {
			out = append(out, s)
		}
	}
	return out
}

func stmtsOfKind(p *ir.Program, k ir.StmtKind) []*ir.Stmt {
	var out []*ir.Stmt
	for _, s := range p.Stmts() {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// mutate applies one random engine primitive to p: modify, insert, delete or
// move of a straight-line statement, or (rarely) a modify of an IF bracket to
// exercise the structural-fallback path. Every mutation goes through the
// journaling entry points, exactly as the generated action executors do.
func mutate(r *rand.Rand, p *ir.Program) {
	as := assignStmts(p)
	if len(as) == 0 {
		return
	}
	s := as[r.Intn(len(as))]
	switch r.Intn(7) {
	case 0: // modify a source operand
		ir.NoteModify(s)
		s.A = ir.VarOp(mutNames[r.Intn(len(mutNames))])
	case 1: // modify the destination
		ir.NoteModify(s)
		s.Dst = ir.VarOp(mutNames[r.Intn(len(mutNames))])
	case 2: // insert a copy at a random position
		p.InsertAt(r.Intn(p.Len()+1), ir.CloneStmt(s))
	case 3: // delete, keeping enough material for later steps
		if len(as) > 4 {
			p.Delete(s)
		} else {
			ir.NoteModify(s)
			s.A = ir.VarOp(mutNames[r.Intn(len(mutNames))])
		}
	case 4: // move after a random anchor (nil = front)
		var after *ir.Stmt
		if j := r.Intn(p.Len() + 1); j > 0 {
			after = p.Stmts()[j-1]
		}
		if after != s {
			p.Move(s, after)
		}
	case 5: // IF-head operand modify — in-kind bracket edit, incremental
		if ifs := stmtsOfKind(p, ir.SIf); len(ifs) > 0 {
			c := ifs[r.Intn(len(ifs))]
			ir.NoteModify(c)
			c.A = ir.VarOp(mutNames[r.Intn(len(mutNames))])
		} else {
			ir.NoteModify(s)
			s.A = ir.VarOp(mutNames[r.Intn(len(mutNames))])
		}
	case 6: // DO-head bound modify — the loop-bounds incremental rule
		if dos := stmtsOfKind(p, ir.SDoHead); len(dos) > 0 {
			c := dos[r.Intn(len(dos))]
			ir.NoteModify(c)
			c.Final = ir.IntOp(int64(r.Intn(6) + 2))
		} else {
			ir.NoteModify(s)
			s.A = ir.VarOp(mutNames[r.Intn(len(mutNames))])
		}
	}
}

// TestUpdateMatchesCompute is the differential property test for incremental
// dependence maintenance: after every primitive mutation of a generated
// program, Graph.Update driven by the change journal must produce a graph
// identical — edges and canonical order both — to a fresh Compute.
func TestUpdateMatchesCompute(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := proggen.Generate(seed, proggen.Config{})
		log, owned := p.EnsureLog()
		if !owned {
			t.Fatalf("seed %d: fresh program already had a journal", seed)
		}
		g := Compute(p)
		r := rand.New(rand.NewSource(seed * 7919))
		for step := 0; step < 40; step++ {
			mutate(r, p)
			g.Update(log.Changes())
			log.Reset()
			want := Compute(p).String()
			if got := g.String(); got != want {
				t.Fatalf("seed %d step %d: incremental graph diverged\nprogram:\n%s\nincremental:\n%s\nfresh:\n%s",
					seed, step, p, got, want)
			}
		}
	}
}

// TestUpdateStructuralFallback pins the structural-change contract: CFG- or
// loop-shape edits force a full recompute (Update returns false), while
// straight-line edits and in-kind bracket-head modifies — loop bounds
// included — stay on the incremental path (true).
func TestUpdateStructuralFallback(t *testing.T) {
	b := ir.NewBuilder("structural")
	b.Declare("n", false).Declare("x", true)
	b.Copy(ir.VarOp("n"), ir.IntOp(4))
	do := b.Do("i", ir.IntOp(1), ir.VarOp("n"))
	body := b.Assign(ir.VarOp("x"), ir.VarOp("x"), ir.OpAdd, ir.VarOp("x"))
	b.EndDo()
	b.Print(ir.VarOp("x"))
	p := b.P
	log, _ := p.EnsureLog()
	g := Compute(p)

	check := func(what string, wantIncremental bool) {
		t.Helper()
		if got := g.Update(log.Changes()); got != wantIncremental {
			t.Errorf("%s: incremental = %t, want %t", what, got, wantIncremental)
		}
		log.Reset()
		if want := Compute(p).String(); g.String() != want {
			t.Errorf("%s: graph diverged\ngot:\n%s\nwant:\n%s", what, g, want)
		}
	}

	ir.NoteModify(body)
	body.A = ir.VarOp("n")
	check("straight-line modify", true)

	ir.NoteModify(do)
	do.Final = ir.IntOp(6)
	check("DO-head bound modify", true)

	ir.NoteModify(do)
	do.Parallel = true
	check("DOALL marking", true)

	ir.NoteModify(do)
	do.LCV = "j"
	body.Dst = ir.VarOp("x") // keep the body well-formed under the rename
	check("LCV rename", false)

	p.Move(body, do)
	check("moving within a loop", true)

	end := p.Stmts()[p.Len()-2]
	if end.Kind != ir.SDoEnd {
		t.Fatalf("expected SDoEnd, got %v", end.Kind)
	}
	p.Delete(body)
	p.Delete(end)
	p.Delete(do)
	check("deleting the loop brackets", false)
}

// TestUndoRestoresProgram checks the cheap-rollback half of the journal:
// unwinding to a mark restores the program text exactly, no matter what
// sequence of primitives ran in between.
func TestUndoRestoresProgram(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := proggen.Generate(seed, proggen.Config{})
		log, _ := p.EnsureLog()
		before := p.String()
		mark := log.Mark()
		r := rand.New(rand.NewSource(seed * 104729))
		for step := 0; step < 25; step++ {
			mutate(r, p)
		}
		log.UndoTo(mark)
		if got := p.String(); got != before {
			t.Fatalf("seed %d: undo did not restore the program\nbefore:\n%s\nafter:\n%s", seed, before, got)
		}
		if log.Len() != mark {
			t.Fatalf("seed %d: journal not truncated to mark: len %d want %d", seed, log.Len(), mark)
		}
	}
}
