package dep

import (
	"repro/internal/dataflow"
	"repro/internal/par"
)

// scalarDepsFrom derives flow, anti and output dependences between scalar
// accesses from the dataflow facts. Each dependence is classified as
// loop-independent (present on the forward-only graph) and/or loop-carried
// at level k (the fact survives one iteration of common loop k and the sink
// access is exposed from that loop's body entry). The analysis may be
// name-restricted (dataflow.AnalyzeNames): only dependences among its
// collected defs/uses are produced, which is how incremental updates rebuild
// just the dirty names.
//
// With workers > 1 the pair loops fan out over the pool: the analysis is
// shared read-only, each shard strides the outer access index and buffers
// its edges privately, and the buffers merge through g.add in shard order.
// Every edge is emitted in exactly one outer iteration, so the shards emit
// disjoint edge sets and normalize erases the merge order.
func (g *Graph) scalarDepsFrom(a *dataflow.Analysis, lt *loopTable) {
	if g.workers > 1 {
		shards := g.workers
		bufs := par.Map(shards, g.workers, func(sh int) []Dependence {
			var buf []Dependence
			g.scalarDepsShard(a, lt, sh, shards, func(d Dependence) { buf = append(buf, d) })
			return buf
		})
		for _, buf := range bufs {
			for _, d := range buf {
				g.add(d)
			}
		}
		return
	}
	g.scalarDepsShard(a, lt, 0, 1, g.add)
}

// scalarDepsShard emits shard sh of shards of the scalar dependences: the
// pair loops skip outer indices not congruent to sh, and the entry-edge
// pass runs in shard 0. It only reads the graph (Prog, Entry), never
// mutates it, so shards may run concurrently over one shared analysis.
func (g *Graph) scalarDepsShard(a *dataflow.Analysis, lt *loopTable, sh, shards int, emit func(Dependence)) {
	p := g.Prog

	// Flow dependences: def d at s reaching scalar use u at t.
	for ui, u := range a.Uses {
		if ui%shards != sh || u.IsArray {
			continue
		}
		t := p.At(u.StmtIdx)
		for di, d := range a.Defs {
			if d.IsArray || d.Name != u.Name {
				continue
			}
			s := p.At(d.StmtIdx)
			if !a.ReachIn[u.StmtIdx].Has(di) {
				continue
			}
			common := lt.common(d.StmtIdx, u.StmtIdx)
			if a.ReachInF[u.StmtIdx].Has(di) && d.StmtIdx < u.StmtIdx {
				emit(Dependence{
					Kind: Flow, Src: s, Dst: t, Var: d.Name,
					Vec: eqVector(len(common)), SrcPos: 1, DstPos: u.Pos,
				})
			}
			for k, l := range common {
				if !l.Contains(p, s) {
					continue // carried deps need the source inside the loop
				}
				endIdx := p.Index(l.End)
				headIdx := p.Index(l.Head)
				if a.ReachInF[endIdx].Has(di) && a.ExposedUses[headIdx].Has(ui) {
					emit(Dependence{
						Kind: Flow, Src: s, Dst: t, Var: d.Name,
						Vec: carriedVector(len(common), k), SrcPos: 1, DstPos: u.Pos,
						Carried: true, Level: k + 1,
					})
				}
			}
		}
	}

	// Anti dependences: scalar use u at s reaching a scalar def at t.
	for di, d := range a.Defs {
		if di%shards != sh || d.IsArray {
			continue
		}
		t := p.At(d.StmtIdx)
		for ui, u := range a.Uses {
			if u.IsArray || u.Name != d.Name {
				continue
			}
			s := p.At(u.StmtIdx)
			if !a.UseReachIn[d.StmtIdx].Has(ui) {
				continue
			}
			common := lt.common(u.StmtIdx, d.StmtIdx)
			if a.UseReachInF[d.StmtIdx].Has(ui) && u.StmtIdx < d.StmtIdx {
				emit(Dependence{
					Kind: Anti, Src: s, Dst: t, Var: d.Name,
					Vec: eqVector(len(common)), SrcPos: u.Pos, DstPos: 1,
				})
			}
			for k, l := range common {
				if !l.Contains(p, s) {
					continue
				}
				endIdx := p.Index(l.End)
				headIdx := p.Index(l.Head)
				if a.UseReachInF[endIdx].Has(ui) && a.ExposedDefs[headIdx].Has(di) {
					emit(Dependence{
						Kind: Anti, Src: s, Dst: t, Var: d.Name,
						Vec: carriedVector(len(common), k), SrcPos: u.Pos, DstPos: 1,
						Carried: true, Level: k + 1,
					})
				}
			}
		}
	}

	// Output dependences: scalar def at s reaching a scalar redefinition at t.
	for dj, e := range a.Defs {
		if dj%shards != sh || e.IsArray {
			continue
		}
		t := p.At(e.StmtIdx)
		for di, d := range a.Defs {
			if di == dj || d.IsArray || d.Name != e.Name {
				continue
			}
			s := p.At(d.StmtIdx)
			if !a.ReachIn[e.StmtIdx].Has(di) {
				continue
			}
			common := lt.common(d.StmtIdx, e.StmtIdx)
			if a.ReachInF[e.StmtIdx].Has(di) && d.StmtIdx < e.StmtIdx {
				emit(Dependence{
					Kind: Output, Src: s, Dst: t, Var: d.Name,
					Vec: eqVector(len(common)), SrcPos: 1, DstPos: 1,
				})
			}
			for k, l := range common {
				if !l.Contains(p, s) {
					continue
				}
				endIdx := p.Index(l.End)
				headIdx := p.Index(l.Head)
				if a.ReachInF[endIdx].Has(di) && a.ExposedDefs[headIdx].Has(dj) {
					emit(Dependence{
						Kind: Output, Src: s, Dst: t, Var: d.Name,
						Vec: carriedVector(len(common), k), SrcPos: 1, DstPos: 1,
						Carried: true, Level: k + 1,
					})
				}
			}
		}
	}

	// Possibly-uninitialized uses: the implicit zero definition at program
	// entry reaches every upward-exposed scalar use, giving it a second
	// "definition" that propagation-style optimizations must respect.
	a.UpwardExposed.ForEach(func(ui int) {
		u := a.Uses[ui]
		if ui%shards != sh || u.IsArray {
			return
		}
		emit(Dependence{
			Kind: Flow, Src: g.Entry, Dst: p.At(u.StmtIdx), Var: u.Name,
			SrcPos: 0, DstPos: u.Pos,
		})
	})

	// Self output/anti carried for a statement redefining the same scalar
	// (e.g. "s = s + 1"): the def in iteration i and the def in iteration
	// i+1 conflict. The general loops above cover distinct statements; the
	// self-output case (di == dj) needs its own pass.
	for di, d := range a.Defs {
		if di%shards != sh || d.IsArray {
			continue
		}
		s := p.At(d.StmtIdx)
		common := lt.at(d.StmtIdx)
		for k, l := range common {
			endIdx := p.Index(l.End)
			headIdx := p.Index(l.Head)
			if a.ReachInF[endIdx].Has(di) && a.ExposedDefs[headIdx].Has(di) {
				emit(Dependence{
					Kind: Output, Src: s, Dst: s, Var: d.Name,
					Vec: carriedVector(len(common), k), SrcPos: 1, DstPos: 1,
					Carried: true, Level: k + 1,
				})
			}
		}
	}
}

// eqVector returns an all-'=' vector of length n.
func eqVector(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = DirEQ
	}
	return v
}

// carriedVector returns (=,...,=,<,*,...,*) with '<' at position k
// (0-based) in a vector of length n.
func carriedVector(n, k int) Vector {
	v := make(Vector, n)
	for i := range v {
		switch {
		case i < k:
			v[i] = DirEQ
		case i == k:
			v[i] = DirLT
		default:
			v[i] = DirAny
		}
	}
	return v
}
