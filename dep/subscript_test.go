package dep

import (
	"testing"

	"repro/internal/frontend"
	"repro/ir"
)

// The tests in this file exercise the refined subscript machinery: the
// Banerjee interval test, weak-zero SIV, and their interaction with the
// direction-vector construction.

func TestBanerjeeDisprovesOutOfRangeDistance(t *testing.T) {
	// a(i) vs a(i+20) with i ∈ [1,10]: the distance exceeds the span.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(40)
DO i = 1, 10
  a(i) = a(i+20)
ENDDO
END`)
	g := Compute(p)
	for _, d := range g.Deps {
		if d.Var == "a" {
			t.Errorf("Banerjee should disprove: %v", d)
		}
	}
}

func TestBanerjeeKeepsInRangeDistance(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(40)
DO i = 1, 10
  a(i) = a(i+5)
ENDDO
END`)
	g := Compute(p)
	found := false
	for _, d := range g.Deps {
		if d.Var == "a" && d.Kind == Anti && d.Carried {
			found = true
		}
	}
	if !found {
		t.Fatalf("in-range distance must stay dependent: %v", g.Deps)
	}
}

func TestBanerjeeSkipsVariableBounds(t *testing.T) {
	// Variable bounds: the interval is unbounded; the dependence must be
	// assumed.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, n
REAL a(40)
READ n
DO i = 1, n
  a(i) = a(i+20)
ENDDO
END`)
	g := Compute(p)
	found := false
	for _, d := range g.Deps {
		if d.Var == "a" {
			found = true
		}
	}
	if !found {
		t.Fatal("variable bounds must be conservative")
	}
}

func TestWeakZeroSIVDivisibility(t *testing.T) {
	// a(2*i) vs a(5): 5 is odd — the store never hits it.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(20), x
DO i = 1, 10
  a(2*i) = 1.0
  x = a(5)
ENDDO
PRINT x
END`)
	g := Compute(p)
	for _, d := range g.Deps {
		if d.Var == "a" {
			t.Errorf("weak-zero SIV should disprove: %v", d)
		}
	}
}

func TestWeakZeroSIVInRange(t *testing.T) {
	// a(2*i) vs a(6): i = 3 is inside [1,10] — dependent.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(20), x
DO i = 1, 10
  a(2*i) = 1.0
  x = a(6)
ENDDO
PRINT x
END`)
	g := Compute(p)
	found := false
	for _, d := range g.Deps {
		if d.Var == "a" && d.Kind == Flow {
			found = true
		}
	}
	if !found {
		t.Fatalf("a(2*i) does hit a(6): %v", g.Deps)
	}
}

func TestWeakZeroSIVOutOfRange(t *testing.T) {
	// a(i) vs a(15) with i ∈ [1,10]: the constant is out of reach.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(20), x
DO i = 1, 10
  a(i) = 1.0
  x = a(15)
ENDDO
PRINT x
END`)
	g := Compute(p)
	for _, d := range g.Deps {
		if d.Var == "a" {
			t.Errorf("out-of-range constant should disprove: %v", d)
		}
	}
}

func TestBanerjeeEnablesParallelization(t *testing.T) {
	// The refined tests have a visible client effect: a(i) = a(i+20) is
	// parallelizable once the dependence is disproved.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(40)
DO i = 1, 10
  a(i) = a(i+20) * 2.0
ENDDO
END`)
	g := Compute(p)
	l := ir.Loops(p)[0]
	for _, d := range g.From(l.Body(p)[0]) {
		if d.Carried {
			t.Fatalf("no carried dependence expected: %v", d)
		}
	}
}

func TestLoopBoundsExtraction(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j, n
READ n
DO i = 3, 9
  DO j = 1, n
    a = 0.0
  ENDDO
ENDDO
END`)
	loops := ir.Loops(p)
	lcvAt := map[string]int{"i": 0, "j": 1}
	b := loopBounds(loops, lcvAt)
	if got, ok := b[0]; !ok || got != [2]int64{3, 9} {
		t.Errorf("bounds[i] = %v, %v", got, ok)
	}
	if _, ok := b[1]; ok {
		t.Error("variable-bound loop must have no extracted bounds")
	}
}

func TestDownwardLoopBounds(t *testing.T) {
	// Downward loop: bounds normalize to [lo, hi].
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(40)
DO i = 10, 1, -1
  a(i) = a(i+20)
ENDDO
END`)
	g := Compute(p)
	for _, d := range g.Deps {
		if d.Var == "a" {
			t.Errorf("Banerjee should disprove for downward loops too: %v", d)
		}
	}
}
