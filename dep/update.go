package dep

import (
	"repro/internal/dataflow"
	"repro/ir"
)

// Update incrementally maintains the graph after the program edits recorded
// in changes (an ir.ChangeLog slice). It re-derives only the dependences of
// locations the edits touched, keeping every other edge, and falls back to a
// full recomputation when an edit changes the CFG shape (any change
// involving a DO/IF bracket statement, or a wholesale program replacement).
// The result is identical — edge order included — to a fresh Compute of the
// current program. It returns false when the fallback path ran.
//
// The incremental path is justified by two observations. First, the CFG is
// determined solely by statement kinds and bracket positions, so edits to
// straight-line statements (assign, read, print) leave it intact up to index
// renumbering. Second, reaching-definition gen/kill sets only interact
// within a single location name: a statement neither generates nor kills
// facts about names it does not access, so its insertion, removal, movement
// or rewriting cannot change the dataflow facts — and hence the dependences
// — of any other name. Re-analyzing the union of names accessed by the old
// and new images of every edited statement (dataflow.AnalyzeNames) therefore
// reproduces exactly the edges a full recomputation would build for them.
//
// Per-primitive dirty rules:
//
//	Add(s), Copy → s:  names of s dirty; control edges onto s rebuilt
//	Delete(s):         names of s dirty; edges incident to s dropped
//	Move(s):           names of s dirty; control edges onto s rebuilt
//	Modify(s):         names of the old AND new images of s dirty
//	Modify(DO head), same LCV:  additionally every name accessed in the
//	                   loop body — bound values shape the direction vectors
//	                   of carried dependences, and those edges run only
//	                   between body statements
//	Modify(IF head), same kind: names rule only — the control region and
//	                   its edges are unchanged
//	kind change / LCV rename / insert, delete or move of any bracket
//	statement / CopyFrom:  full recomputation
func (g *Graph) Update(changes []ir.Change) bool {
	if len(changes) == 0 {
		return true
	}
	p := g.Prog
	dirty := make(map[string]bool)
	touched := make(map[*ir.Stmt]bool)
	moved := false
	for _, c := range changes {
		if structuralChange(c) {
			g.stats.StructuralRebuilds++
			g.recompute()
			return false
		}
		switch c.Kind {
		case ir.ChangeModify:
			addStmtNames(dirty, c.Before)
			addStmtNames(dirty, c.Stmt)
			if c.Stmt.Kind == ir.SDoHead {
				g.addRegionNames(dirty, c.Stmt)
			}
		case ir.ChangeInsert, ir.ChangeMove, ir.ChangeDelete:
			addStmtNames(dirty, c.Stmt)
			touched[c.Stmt] = true
			if c.Kind == ir.ChangeMove {
				moved = true
			}
		}
	}

	// Drop every edge the edits can have invalidated: data edges on a dirty
	// name, control edges onto a touched statement, and any edge with an
	// endpoint no longer in the program.
	kept := g.Deps[:0]
	for _, d := range g.Deps {
		if d.Kind == Control {
			if touched[d.Dst] || p.Index(d.Src) < 0 || p.Index(d.Dst) < 0 {
				continue
			}
		} else {
			if dirty[d.Var] {
				continue
			}
			if (d.Src != g.Entry && p.Index(d.Src) < 0) || p.Index(d.Dst) < 0 {
				continue
			}
		}
		kept = append(kept, d)
	}
	g.Deps = kept
	// The kept edges are a subsequence of the previous canonical order.
	// Inserts and deletes shift positions but keep the survivors' relative
	// order, so the prefix stays sorted and normalize can merge instead of
	// re-sorting — unless a move reordered statements.
	sortedPrefix := len(kept)
	if moved {
		sortedPrefix = 0
	}
	g.resetMaps()
	for i, d := range g.Deps {
		g.link(i, d)
	}
	g.flow = nil // full dataflow is stale; Dataflow() recomputes on demand

	// Rebuild the dirty region: scalar and array dependences of the dirty
	// names, and control dependences onto relocated or inserted statements.
	lt := buildLoopTable(p)
	if len(dirty) > 0 {
		a := dataflow.AnalyzeNames(p, dirty)
		g.scalarDepsFrom(a, lt)
		g.arrayDeps(lt, dirty)
	}
	for s := range touched {
		i := p.Index(s)
		if i < 0 {
			continue // deleted (or inserted then deleted)
		}
		for _, head := range lt.ctrlHeads[i] {
			g.add(Dependence{Kind: Control, Src: head, Dst: s})
		}
	}
	g.normalizeFrom(sortedPrefix)
	g.stats.IncrementalUpdates++
	return true
}

// structuralChange reports whether c can alter the CFG shape or loop
// structure, forcing a full recomputation. Inserting, deleting or moving any
// bracket statement changes loop membership or control regions; a modify is
// structural only when it changes the statement kind or renames a DO loop's
// control variable — an LCV rename flips the subscript-test classification
// (index variable vs symbol) for array accesses whose array name the dirty
// set cannot see. In-kind modifies of bracket heads (loop bounds, IF
// operands, DOALL marking) stay incremental; Update dirties the loop body
// for DO heads to cover bound-sensitive direction vectors.
func structuralChange(c ir.Change) bool {
	switch c.Kind {
	case ir.ChangeReset:
		return true
	case ir.ChangeModify:
		if c.Before == nil || c.Before.Kind != c.Stmt.Kind {
			return true
		}
		return c.Stmt.Kind == ir.SDoHead && c.Before.LCV != c.Stmt.LCV
	default:
		return c.Stmt != nil && isBracket(c.Stmt.Kind)
	}
}

// addRegionNames dirties every location name accessed inside head's loop
// body (head and matching end included). Used for DO-head bound modifies:
// any dependence whose direction vector involves the loop runs between two
// statements of the body, so re-deriving the body's names rebuilds every
// edge the new bounds could reshape.
func (g *Graph) addRegionNames(set map[string]bool, head *ir.Stmt) {
	i := g.Prog.Index(head)
	if i < 0 {
		return // deleted by a later change in the batch
	}
	depth := 0
	for _, s := range g.Prog.Stmts()[i:] {
		switch s.Kind {
		case ir.SDoHead:
			depth++
		case ir.SDoEnd:
			depth--
		}
		addStmtNames(set, s)
		if depth == 0 {
			return
		}
	}
}

func isBracket(k ir.StmtKind) bool {
	switch k {
	case ir.SDoHead, ir.SDoEnd, ir.SIf, ir.SElse, ir.SEndIf:
		return true
	}
	return false
}

// addStmtNames adds every location name statement s accesses — its
// definition target, every scalar read (subscript variables included), and
// every array operand — to the set.
func addStmtNames(set map[string]bool, s *ir.Stmt) {
	if s == nil {
		return
	}
	if d, ok := s.Defs(); ok {
		set[d.Name] = true
		for _, sub := range d.Subs {
			for _, v := range sub.Vars() {
				set[v] = true
			}
		}
	}
	for _, u := range s.Uses() {
		switch u.Kind {
		case ir.Var:
			set[u.Name] = true
		case ir.ArrayRef:
			set[u.Name] = true
			for _, sub := range u.Subs {
				for _, v := range sub.Vars() {
					set[v] = true
				}
			}
		}
	}
}
