package genesis

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/ir"
)

const sampleProgram = `
PROGRAM sample
INTEGER n, i
REAL a(16), s
n = 16
s = 0.0
DO i = 1, n
  a(i) = i * 2.0
ENDDO
DO i = 1, 16
  s = s + a(i)
ENDDO
PRINT s
END
`

func TestParseProgramAndExecute(t *testing.T) {
	p, err := ParseProgram(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].AsFloat() != 272 { // 2·(1+…+16)
		t.Fatalf("output = %v", out)
	}
}

func TestBuiltInLifecycle(t *testing.T) {
	p, err := ParseProgram(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	o, err := BuiltIn("CTP")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "CTP" {
		t.Errorf("name = %q", o.Name())
	}
	if pts := o.Points(p); pts != 1 {
		t.Errorf("points = %d (n feeds one loop bound)", pts)
	}
	n, err := o.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("applications = %d", n)
	}
	if o.Cost().Total() == 0 {
		t.Error("cost counters empty")
	}
	o.ResetCost()
	if o.Cost().Total() != 0 {
		t.Error("ResetCost failed")
	}
	if _, err := BuiltIn("XYZ"); err == nil {
		t.Error("unknown built-in must error")
	}
}

func TestOptimizePipelinePreservesOutput(t *testing.T) {
	orig, _ := ParseProgram(sampleProgram)
	want, err := Execute(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	// FUS must run before LUR: unrolling desynchronizes the loop headers
	// and disables fusion (the paper's Section 4 interaction).
	p, counts, err := Optimize(sampleProgram, "CTP", "CFO", "DCE", "FUS", "LUR", "PAR")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].AsFloat() != want[0].AsFloat() {
		t.Fatalf("pipeline changed output: %v vs %v\n%s", got, want, p)
	}
	if counts["CTP"] == 0 {
		t.Error("CTP should have applied")
	}
	if counts["FUS"] == 0 {
		t.Errorf("FUS should have fused the two loops (counts=%v)\n%s", counts, p)
	}
}

func TestParseSpecCompileApply(t *testing.T) {
	// A custom optimization written against the public API: strength
	// reduction of multiplication by two into an addition.
	src := `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.opc == mul AND type(Si.opr_2) == var AND (Si.opr_3 == 2);
  Depend
ACTION
  modify(Si.opc, add);
  modify(Si.opr_3, Si.opr_2);
`
	spec, err := ParseSpec("SRD", src)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name() != "SRD" {
		t.Error("spec name")
	}
	o, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ParseProgram("PROGRAM p\nINTEGER x, y\nREAD y\nx = y * 2\nEND")
	n, err := o.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	if got := ir.FormatStmt(p.At(1)); got != "x := y + y" {
		t.Errorf("strength-reduced = %q", got)
	}
}

func TestGenerateGo(t *testing.T) {
	spec, err := ParseSpec("CTP", mustSource(t, "CTP"))
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.GenerateGo("main", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package main", "applyCTP", "optlib.Main"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func mustSource(t *testing.T, name string) string {
	t.Helper()
	src, err := BuiltInSource(name)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestBuiltInNamesAndTen(t *testing.T) {
	if len(TenOptimizations()) != 10 {
		t.Error("ten optimizations")
	}
	names := BuiltInNames()
	if len(names) < 11 {
		t.Errorf("built-ins = %v", names)
	}
	for _, n := range TenOptimizations() {
		if _, err := BuiltInSource(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := BuiltInSource("XYZ"); err == nil {
		t.Error("unknown source must error")
	}
}

func TestStrategyOptions(t *testing.T) {
	for _, s := range []Strategy{Heuristic, MembersFirst, DepsFirst} {
		o, err := BuiltIn("INX", WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		p, _ := ParseProgram(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 1, 10
    a(i,j) = 0.0
  ENDDO
ENDDO
END`)
		applied, err := o.ApplyOnce(p)
		if err != nil {
			t.Fatal(err)
		}
		if !applied {
			t.Errorf("strategy %v: INX should apply", s)
		}
	}
	if _, err := BuiltIn("CTP", WithoutRecompute()); err != nil {
		t.Fatal(err)
	}
}

func TestDependencesAccessor(t *testing.T) {
	p, _ := ParseProgram("PROGRAM p\nINTEGER x, y\nx = 1\ny = x\nEND")
	g := Dependences(p)
	if len(g.Deps) == 0 {
		t.Error("dependence graph empty")
	}
}

func TestRunExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var b strings.Builder
	if err := RunExperiments(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "E4") {
		t.Error("experiment output incomplete")
	}
}

// withoutRecomputeOpt adapts the public option for the ablation bench,
// which lives in this package.
func withoutRecomputeOpt() []engine.Option {
	return []engine.Option{engine.WithoutRecompute()}
}
