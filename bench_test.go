package genesis

// The benchmarks regenerate every Section-4 result of the paper as a
// testing.B target (run `go test -bench=. -benchmem`); see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the paper-vs-measured record.
// Custom metrics report the experiment's headline numbers alongside the
// usual ns/op.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/dep"
	"repro/internal/advisor"
	"repro/internal/codegen"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/gospel"
	"repro/internal/interp"
	"repro/internal/jobs"
	"repro/internal/nativecache"
	"repro/internal/obs"
	"repro/internal/proggen"
	"repro/internal/server"
	"repro/internal/specs"
	"repro/internal/workloads"
	"repro/ir"
	"repro/optlib"
)

// BenchmarkE1QualityVsHandCoded regenerates E1: generated optimizers against
// the hand-coded suite on every workload.
func BenchmarkE1QualityVsHandCoded(b *testing.B) {
	var agreement, rows int
	for i := 0; i < b.N; i++ {
		r := experiments.RunE1()
		agreement, rows = r.Agreement, len(r.Rows)
	}
	b.ReportMetric(float64(agreement), "agree")
	b.ReportMetric(float64(rows), "pairs")
}

// BenchmarkE2ApplicationPoints regenerates E2: the application-point census
// and CTP's enablement counts.
func BenchmarkE2ApplicationPoints(b *testing.B) {
	var r experiments.E2Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunE2()
	}
	b.ReportMetric(float64(r.Points["CTP"]), "CTP-points")
	b.ReportMetric(float64(r.Enabled["DCE"]), "enabled-DCE")
	b.ReportMetric(float64(r.Enabled["CFO"]), "enabled-CFO")
	b.ReportMetric(float64(r.Enabled["LUR"]), "enabled-LUR")
}

// BenchmarkE3Orderings regenerates E3: the six orderings of FUS, INX, LUR
// on the interaction program.
func BenchmarkE3Orderings(b *testing.B) {
	var distinct int
	for i := 0; i < b.N; i++ {
		distinct = experiments.RunE3().DistinctPrograms
	}
	b.ReportMetric(float64(distinct), "programs")
}

// BenchmarkE4CostBenefit regenerates E4: per-optimization cost and expected
// benefit under the three architectural models.
func BenchmarkE4CostBenefit(b *testing.B) {
	var inxChecks int
	var inxBenefit float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunE4()
		row, _ := r.Row("INX")
		inxChecks, inxBenefit = row.Checks, row.BenefitScalar
	}
	b.ReportMetric(float64(inxChecks), "INX-checks")
	b.ReportMetric(inxBenefit, "INX-benefit%")
}

// BenchmarkE5SpecVariants regenerates E5: the LUR bound-check-order cost
// comparison.
func BenchmarkE5SpecVariants(b *testing.B) {
	var upper, lower int
	for i := 0; i < b.N; i++ {
		r := experiments.RunE5()
		upper, lower = r.UpperFirstChecks, r.LowerFirstChecks
	}
	b.ReportMetric(float64(upper), "upper-first")
	b.ReportMetric(float64(lower), "lower-first")
}

// BenchmarkE6MembershipStrategies regenerates E6: members-first vs
// deps-first vs the heuristic.
func BenchmarkE6MembershipStrategies(b *testing.B) {
	var wins, rows int
	for i := 0; i < b.N; i++ {
		r := experiments.RunE6()
		wins, rows = r.HeuristicWins, len(r.Rows)
	}
	b.ReportMetric(float64(wins), "heuristic-wins")
	b.ReportMetric(float64(rows), "opts")
}

// BenchmarkE7GeneratedSize regenerates E7: the implementation-size
// statistics of the emitted code.
func BenchmarkE7GeneratedSize(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		avg = experiments.RunE7().AvgGenerated
	}
	b.ReportMetric(avg, "avg-lines")
}

// --- microbenchmarks of the substrates ---

// BenchmarkDependenceAnalysis measures one full dependence-graph
// computation over the whole workload suite.
func BenchmarkDependenceAnalysis(b *testing.B) {
	progs := make([]func() int, 0, len(workloads.All))
	for _, w := range workloads.All {
		w := w
		progs = append(progs, func() int {
			return len(dep.Compute(w.Program()).Deps)
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range progs {
			f()
		}
	}
}

// BenchmarkOptimizerCompile measures compiling all built-in specifications
// (GENesis's generation step).
func BenchmarkOptimizerCompile(b *testing.B) {
	names := specs.Names()
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			if _, err := specs.Compile(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkApplyCTP measures one full constant-propagation fixpoint on the
// workload suite.
func BenchmarkApplyCTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.All {
			p := w.Program()
			o := specs.MustCompile("CTP")
			if _, err := o.ApplyAll(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDependenceAnalysisLarge scales the dependence analysis to a
// generated ~200-statement program.
func BenchmarkDependenceAnalysisLarge(b *testing.B) {
	p := proggen.Generate(1, proggen.Config{MaxStmts: 200})
	b.ReportMetric(float64(p.Len()), "stmts")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.Compute(p)
	}
}

// BenchmarkApplyPipelineLarge runs a five-optimization pipeline over a
// generated large program.
func BenchmarkApplyPipelineLarge(b *testing.B) {
	pipeline := []string{"CTP", "CFO", "DCE", "FUS", "PAR"}
	for i := 0; i < b.N; i++ {
		p := proggen.Generate(2, proggen.Config{MaxStmts: 120})
		for _, name := range pipeline {
			o := specs.MustCompile(name)
			if _, err := o.ApplyAll(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDriverFixpoint compares the two dependence-maintenance modes of
// the fixpoint driver on large generated programs: the default incremental
// Graph.Update from the change journal against a full dep.Compute after
// every application (WithoutIncremental). CTP is the driven optimizer — its
// actions are modify-only, so every application stays on the incremental
// path. Compare with:
//
//	go test -bench=DriverFixpoint -benchmem | tee out.txt
//	benchstat out.txt          # or scripts/bench.sh
func BenchmarkDriverFixpoint(b *testing.B) {
	modes := []struct {
		name string
		opts []Option
	}{
		{"incremental", nil},
		{"full-recompute", []Option{WithoutIncremental()}},
	}
	for _, size := range []int{120, 500} {
		template := proggen.Generate(11, proggen.Config{MaxStmts: size})
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s-%d", mode.name, size), func(b *testing.B) {
				o, err := BuiltIn("CTP", mode.opts...)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(template.Len()), "stmts")
				var apps int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					p := template.Clone()
					b.StartTimer()
					n, err := o.ApplyAll(p)
					if err != nil {
						b.Fatal(err)
					}
					apps = n
				}
				b.ReportMetric(float64(apps), "apps")
			})
		}
	}
}

// BenchmarkDriverFixpointObs isolates the cost of the tracing layer on the
// driver fixpoint: no tracer at all, a disabled tracer threaded through every
// candidate point (the production default — must stay within 5% of "none";
// scripts/bench.sh -overhead enforces this), and a fully collecting tracer.
func BenchmarkDriverFixpointObs(b *testing.B) {
	template := proggen.Generate(11, proggen.Config{MaxStmts: 120})
	variants := []struct {
		name string
		opts func() []Option
	}{
		{"none", func() []Option { return nil }},
		{"disabled", func() []Option {
			return []Option{WithTracer(obs.NewTracer(obs.Disabled()))}
		}},
		{"traced", func() []Option {
			return []Option{WithTracer(obs.NewTracer(obs.Collect()))}
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				o, err := BuiltIn("CTP", v.opts()...)
				if err != nil {
					b.Fatal(err)
				}
				p := template.Clone()
				b.StartTimer()
				if _, err := o.ApplyAll(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerOptimize measures one POST /v1/optimize through the optd
// handler stack (routing, admission, decoding, the full pipeline, encoding):
// cold runs bypass the result cache with no_cache, hit runs repeat an
// identical request against a warmed cache. The hit/cold ratio is the value
// of content-addressed caching; a hit should be well over an order of
// magnitude cheaper.
func BenchmarkServerOptimize(b *testing.B) {
	prog := proggen.Generate(7, proggen.Config{MaxStmts: 120})
	body, err := json.Marshal(map[string]any{
		"source": ir.ToMiniF(prog),
		"opts":   []string{"CTP", "DCE"},
	})
	if err != nil {
		b.Fatal(err)
	}
	post := func(b *testing.B, h http.Handler, payload []byte) {
		b.Helper()
		req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("optimize = %d: %s", rec.Code, rec.Body.String())
		}
	}

	quiet := server.Config{Logger: slog.New(slog.DiscardHandler)}
	b.Run("cold", func(b *testing.B) {
		srv, err := server.New(quiet)
		if err != nil {
			b.Fatal(err)
		}
		h := srv.Handler()
		cold, err := json.Marshal(map[string]any{
			"source":   ir.ToMiniF(prog),
			"opts":     []string{"CTP", "DCE"},
			"no_cache": true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, cold)
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		srv, err := server.New(quiet)
		if err != nil {
			b.Fatal(err)
		}
		h := srv.Handler()
		post(b, h, body) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, body)
		}
		b.StopTimer()
		if hits := srv.Metrics().CacheHits.Load(); hits < int64(b.N) {
			b.Fatalf("cache hits = %d, want >= %d", hits, b.N)
		}
	})
}

// BenchmarkAdvisorOrder measures what the pass-ordering advisor adds to a
// POST /v1/optimize: order=default only stamps the requested order, while
// order=auto featurizes the program and retrieves the k nearest historical
// outcomes before the pipeline runs. The outcome store is seeded so auto
// resolves to exactly the order default runs — both variants execute an
// identical pipeline, making the auto/default ratio the pure cost of the
// advisor decision. scripts/bench.sh -advisor gates that ratio at 1.05.
func BenchmarkAdvisorOrder(b *testing.B) {
	prog := proggen.Generate(7, proggen.Config{MaxStmts: 120})
	src := ir.ToMiniF(prog)
	opts := []string{"CTP", "DCE"}
	run := func(b *testing.B, directive string) {
		srv, err := server.New(server.Config{Logger: slog.New(slog.DiscardHandler)})
		if err != nil {
			b.Fatal(err)
		}
		// Seed enough neighbors that auto retrieves instead of falling back.
		// Every seeded outcome (and every outcome harvested from the runs
		// below) carries the default order, so the retrieved recommendation
		// is always CTP,DCE and the two sub-benchmarks stay comparable.
		for i := 0; i < 8; i++ {
			srv.Advisor().Harvest(advisor.Outcome{
				Source: src, Opts: opts, Order: opts,
				Applied: 5, WallUS: 100, Engine: "interp",
			})
		}
		srv.Advisor().Flush()
		payload, err := json.Marshal(map[string]any{
			"source": src, "opts": opts, "order": directive, "no_cache": true,
		})
		if err != nil {
			b.Fatal(err)
		}
		h := srv.Handler()
		post := func() {
			req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(payload))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("optimize = %d: %s", rec.Code, rec.Body.String())
			}
		}
		post() // warm the feature-vector cache, as a steady-state server is
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post()
		}
	}
	b.Run("default", func(b *testing.B) { run(b, server.OrderDefault) })
	b.Run("auto", func(b *testing.B) { run(b, server.OrderAuto) })
}

// BenchmarkJobsThroughput measures the batch-job path end to end: HTTP
// submission through WAL journaling, scheduling, a worker-pool optimization
// run, and completion. Every iteration submits a unique program so neither
// the idempotency key nor the result cache short-circuits the pipeline; the
// WAL runs without per-append fsync so the benchmark measures the subsystem
// rather than the disk.
func BenchmarkJobsThroughput(b *testing.B) {
	srv, err := server.New(server.Config{
		Logger:     slog.New(slog.DiscardHandler),
		JobsDir:    b.TempDir(),
		JobsNoSync: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := json.Marshal(map[string]any{
			"source": fmt.Sprintf("PROGRAM j%d\nINTEGER a, x\nx = %d\na = 1\nPRINT x\nEND\n", i, i),
			"opts":   []string{"DCE"},
		})
		if err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			b.Fatalf("submit = %d: %s", rec.Code, rec.Body.String())
		}
		var v struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			b.Fatal(err)
		}
		j, err := srv.Jobs().Wait(context.Background(), v.ID)
		if err != nil {
			b.Fatal(err)
		}
		if j.State != jobs.StateDone {
			b.Fatalf("job %s = %s: %s", j.ID, j.State, j.LastError)
		}
	}
	b.StopTimer()
	if err := srv.Shutdown(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFarmThroughput prices the differential fuzzing oracle: each
// iteration generates one corpus program from the aggregation profile and
// sweeps it through the reference interpreter and the default variant
// matrix over the full default pipeline — the per-program cost that sizes
// a farm campaign. Healthy specs must stay divergence-free throughout.
func BenchmarkFarmThroughput(b *testing.B) {
	ch, err := farm.NewChecker(farm.Config{})
	if err != nil {
		b.Fatal(err)
	}
	st, err := farm.OpenStore("")
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	camp, err := farm.NewManager().Ensure("bench", farm.CampaignConfig{
		Profile: "aggregation", Count: 1 << 30, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i) + 1
		diverged, err := farm.ProcessSeed(context.Background(), ch, st, camp, farm.Hooks{}, seed)
		if err != nil {
			b.Fatal(err)
		}
		if diverged {
			b.Fatalf("healthy specs diverged at seed %d", seed)
		}
	}
}

// BenchmarkCompiledFixpoint prices the compiled serving fast path against
// the interpreted engine on the paper-scale corpus: the five-pass
// CTP,CFO,DCE,FUS,PAR pipeline over the 379-statement hompack-ish program.
// The compiled side is a plugin artifact from the content-addressed cache
// driven through the shared-graph pipeline — the exact code path optd
// serves under -engine=auto; the interpreted side is the engine ApplyAll
// sequence the server runs otherwise. Setup cross-checks the two engines
// byte-for-byte before any timing; scripts/bench.sh -native enforces the
// >=1.5x steady-state speedup gate on the ratio.
func BenchmarkCompiledFixpoint(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode: skipping toolchain integration")
	}
	if _, err := exec.LookPath("go"); err != nil {
		b.Skip("go toolchain not available")
	}
	raw, err := os.ReadFile(filepath.Join("examples", "programs", "hompack-ish.mf"))
	if err != nil {
		b.Fatal(err)
	}
	template, err := ParseProgram(string(raw))
	if err != nil {
		b.Fatal(err)
	}
	pipeline := []string{"CTP", "CFO", "DCE", "FUS", "PAR"}

	dir := os.Getenv("REPRO_NATIVE_DIR")
	if dir == "" {
		d, err := nativecache.DefaultDir()
		if err != nil {
			b.Fatal(err)
		}
		dir = d
	}
	cache, err := nativecache.New(nativecache.Config{Dir: dir, Logger: slog.New(slog.DiscardHandler)})
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	art, err := cache.Ensure(ctx, nativecache.NewSpecSet(specs.Sources), nativecache.ModePlugin)
	if err != nil {
		b.Skipf("plugin artifact unavailable: %v", err)
	}

	interpret := func(p *ir.Program) {
		for _, name := range pipeline {
			o := specs.MustCompile(name)
			if _, err := o.ApplyAll(p); err != nil {
				b.Fatalf("%s: %v", name, err)
			}
		}
	}
	passes := make([]optlib.NamedApply, len(pipeline))
	for i, name := range pipeline {
		fn, ok := art.Func(name)
		if !ok {
			b.Fatalf("artifact has no compiled %s", name)
		}
		passes[i] = optlib.NamedApply{Name: name, Apply: fn}
	}
	compiled := func(p *ir.Program) {
		if _, err := optlib.Pipeline(p, passes, optlib.Limits{}); err != nil {
			b.Fatal(err)
		}
	}

	// The speedup is only worth measuring if the outputs agree byte for
	// byte — the differential is part of setup, not a separate test.
	pi, pc := template.Clone(), template.Clone()
	interpret(pi)
	compiled(pc)
	if pi.String() != pc.String() || ir.ToMiniF(pi) != ir.ToMiniF(pc) {
		b.Fatal("compiled and interpreted pipelines disagree on hompack-ish")
	}

	for _, bc := range []struct {
		name string
		run  func(p *ir.Program)
	}{
		{"interpreted", interpret},
		{"compiled", compiled},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportMetric(float64(template.Len()), "stmts")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := template.Clone()
				b.StartTimer()
				bc.run(p)
			}
		})
	}
}

// BenchmarkRegionParallel measures the region-parallel fixpoint against the
// plain sequential driver on the hompack-ish workload, at worker counts
// 1, 2, 4 and 8. The gated CI comparison is workers4 vs workers1; the
// byte-identity differential across every worker count runs as part of
// setup — the speedup is only worth measuring if the outputs agree.
func BenchmarkRegionParallel(b *testing.B) {
	raw, err := os.ReadFile(filepath.Join("examples", "programs", "hompack-ish.mf"))
	if err != nil {
		b.Fatal(err)
	}
	template, err := ParseProgram(string(raw))
	if err != nil {
		b.Fatal(err)
	}
	pipeline := []string{"CTP", "CFO", "DCE", "FUS", "PAR"}
	seq := func(p *ir.Program) {
		for _, name := range pipeline {
			o := specs.MustCompile(name)
			if _, err := o.ApplyAll(p); err != nil {
				b.Fatalf("%s: %v", name, err)
			}
		}
	}
	parl := func(w int) func(p *ir.Program) {
		return func(p *ir.Program) {
			for _, name := range pipeline {
				o := specs.MustCompile(name)
				if _, _, err := o.ApplyAllRegions(context.Background(), p, w); err != nil {
					b.Fatalf("workers=%d %s: %v", w, name, err)
				}
			}
		}
	}

	want := template.Clone()
	seq(want)
	for _, w := range []int{1, 2, 4, 8} {
		got := template.Clone()
		parl(w)(got)
		if got.String() != want.String() {
			b.Fatalf("workers=%d output diverges from sequential on hompack-ish", w)
		}
	}

	for _, bc := range []struct {
		name string
		run  func(p *ir.Program)
	}{
		{"sequential", seq},
		{"workers1", parl(1)},
		{"workers2", parl(2)},
		{"workers4", parl(4)},
		{"workers8", parl(8)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportMetric(float64(template.Len()), "stmts")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := template.Clone()
				b.StartTimer()
				bc.run(p)
			}
		})
	}
}

// BenchmarkGenerateCode measures emitting Go source for the whole suite.
func BenchmarkGenerateCode(b *testing.B) {
	var sp []*gospel.Spec
	for _, name := range specs.Names() {
		s, err := gospel.ParseAndCheck(name, specs.Sources[name])
		if err != nil {
			b.Fatal(err)
		}
		sp = append(sp, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sp {
			if _, err := codegen.Generate(s, codegen.Options{Package: "main"}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkInterpreter measures executing the workload suite.
func BenchmarkInterpreter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.All {
			if _, err := interp.Run(w.Program(), w.Input, interp.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClusterForward prices the sharded routing hop: an optimize cache
// hit served by the owning node directly ("local") against the identical
// request arriving at the non-owner and being proxied one hop to the owner
// ("forwarded"). Both paths terminate in the owner's result cache, so the
// gap is pure forwarding overhead — proxy round-trip, header copy, response
// relay over real loopback TCP.
func BenchmarkClusterForward(b *testing.B) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	peers := []string{addrA, addrB}
	start := func(self string, ln net.Listener) (*server.Server, *http.Server) {
		srv, err := server.New(server.Config{
			Logger:        slog.New(slog.DiscardHandler),
			Peers:         peers,
			Advertise:     self,
			ProbeInterval: time.Hour, // quiet: no probe traffic during timing
		})
		if err != nil {
			b.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return srv, hs
	}
	srvA, hsA := start(addrA, lnA)
	srvB, hsB := start(addrB, lnB)
	defer func() {
		hsA.Close()
		hsB.Close()
		srvA.Shutdown(context.Background())
		srvB.Shutdown(context.Background())
	}()

	prog := proggen.Generate(7, proggen.Config{MaxStmts: 120})
	body, err := json.Marshal(map[string]any{
		"source": ir.ToMiniF(prog),
		"opts":   []string{"CTP", "DCE"},
	})
	if err != nil {
		b.Fatal(err)
	}
	post := func(addr string) *http.Response {
		resp, err := http.Post("http://"+addr+"/v1/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			b.Fatalf("optimize = %d: %s", resp.StatusCode, raw)
		}
		return resp
	}
	// Ownership is hash-determined; discover it empirically (and warm the
	// owner's cache) from the routing header any node stamps.
	resp := post(addrA)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	owner := resp.Header.Get(server.ServedByHeader)
	other := addrA
	if owner == addrA {
		other = addrB
	}

	for _, bc := range []struct{ name, addr string }{
		{"local", owner},
		{"forwarded", other},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resp := post(bc.addr)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
}
