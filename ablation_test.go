package genesis

// Ablation benchmarks for the design choices DESIGN.md calls out: what each
// mechanism buys, measured by switching it off.

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/specs"
	"repro/internal/workloads"
)

// inxBenefit measures interchange's average scalar benefit over the
// workloads under a given locality penalty.
func inxBenefit(b *testing.B, cfg interp.Config) float64 {
	b.Helper()
	var total float64
	for _, w := range workloads.All {
		before, err := interp.Run(w.Program(), w.Input, cfg)
		if err != nil {
			b.Fatal(err)
		}
		p := w.Program()
		if _, err := specs.MustCompile("INX").ApplyAll(p); err != nil {
			b.Fatal(err)
		}
		after, err := interp.Run(p, w.Input, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += interp.Benefit(before.Counts, after.Counts, interp.Scalar, interp.DefaultModel)
	}
	return 100 * total / float64(len(workloads.All))
}

// BenchmarkAblationMemoryModel ablates the locality (stride-stall) model:
// interchange's benefit should collapse to ~zero without it — the benefit
// the paper attributes to INX is a memory-behaviour effect, not an
// operation-count effect.
func BenchmarkAblationMemoryModel(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = inxBenefit(b, interp.Config{})
		without = inxBenefit(b, interp.Config{NoMemPenalty: true})
	}
	b.ReportMetric(with, "INX-benefit%")
	b.ReportMetric(without, "INX-benefit-nomem%")
	if without >= with {
		b.Fatalf("ablation inverted: with=%v without=%v", with, without)
	}
	if without > 0.01 {
		b.Fatalf("without the locality model INX should be benefit-neutral, got %v", without)
	}
}

// BenchmarkAblationMemoryPenaltySweep sweeps the stall penalty, showing the
// benefit estimate scales with the assumed memory-hierarchy cost (the
// paper's remark that some benefits only appear "if various types of memory
// hierarchies are part of the parallel system").
func BenchmarkAblationMemoryPenaltySweep(b *testing.B) {
	var at1, at3, at8 float64
	for i := 0; i < b.N; i++ {
		at1 = inxBenefit(b, interp.Config{MemPenalty: 1})
		at3 = inxBenefit(b, interp.Config{MemPenalty: 3})
		at8 = inxBenefit(b, interp.Config{MemPenalty: 8})
	}
	b.ReportMetric(at1, "benefit@1%")
	b.ReportMetric(at3, "benefit@3%")
	b.ReportMetric(at8, "benefit@8%")
	if !(at1 < at3 && at3 < at8) {
		b.Fatalf("benefit must grow with the penalty: %v %v %v", at1, at3, at8)
	}
}

// BenchmarkAblationRecompute ablates dependence recomputation between
// applications (the interactive choice in the paper's constructor):
// without recomputation the optimizer sees stale dependences and finds
// fewer (or at best equal) application points — cheaper, but incomplete.
func BenchmarkAblationRecompute(b *testing.B) {
	var withApps, withoutApps, withChecks, withoutChecks int
	for i := 0; i < b.N; i++ {
		withApps, withoutApps, withChecks, withoutChecks = 0, 0, 0, 0
		for _, w := range workloads.All {
			p1 := w.Program()
			o1 := specs.MustCompile("CTP")
			apps1, err := o1.ApplyAll(p1)
			if err != nil {
				b.Fatal(err)
			}
			withApps += len(apps1)
			withChecks += o1.Cost().Checks()

			p2 := w.Program()
			o2 := specs.MustCompile("CTP", withoutRecomputeOpt()...)
			apps2, err := o2.ApplyAll(p2)
			if err != nil {
				b.Fatal(err)
			}
			withoutApps += len(apps2)
			withoutChecks += o2.Cost().Checks()
		}
	}
	b.ReportMetric(float64(withApps), "apps-recompute")
	b.ReportMetric(float64(withoutApps), "apps-stale")
	b.ReportMetric(float64(withChecks), "checks-recompute")
	b.ReportMetric(float64(withoutChecks), "checks-stale")
	if withoutApps > withApps {
		b.Fatalf("stale dependences cannot create applications: %d > %d", withoutApps, withApps)
	}
}
